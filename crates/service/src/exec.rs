//! Request execution: each worker thread drives one [`Arena`] through
//! the compile → simulate → analyze stack and renders responses.
//!
//! Everything here is deterministic. Given the same request, two workers
//! produce byte-identical response bodies — the invariant the result
//! cache (and the protocol's "cache hits are indistinguishable from cold
//! runs" promise) rests on.
//!
//! Trial-shaped requests (`batch`, `attack` calibration, `sweep` lanes)
//! run on the **fork server**: one [`sempe_sim::Checkpoint`] per
//! (program, machine configuration) is built on first use and shared
//! across the worker pool through the [`ForkCache`]; each trial then
//! restores the checkpoint into the worker's arena slot, patches the
//! input scalars' data slots, and runs — no re-parse, re-compile,
//! re-decode, or simulator re-construction per trial. Checkpoint
//! restores are proven bit-for-bit equal to cold runs by the golden
//! tests in `crates/sim/tests/checkpoint.rs` and the fuzzer's fork
//! oracle, so the determinism invariant above is preserved.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use sempe_compile::{analyze_taint, compile, parse_wir, ParsedProgram, WirProgram};
use sempe_core::attack::{BranchProfileAttacker, TimingAttacker};
use sempe_core::hash::{fnv1a, Fnv1a};
use sempe_core::json::Json;
use sempe_core::telemetry::{Counter, Span};
use sempe_core::trace::ObservationTrace;
use sempe_core::{first_divergence, Strictness};
use sempe_isa::{disasm, Addr, DecodeMode, Program};
use sempe_sim::{Checkpoint, HostProfile, SecurityMode, SimConfig, SimError, SimResult, Simulator};

use crate::cache::CacheKey;
use crate::protocol::{BackendSel, ErrorCode, ExecMode, Request, ServiceError};
use crate::sync;

/// A worker's reusable simulation arena.
///
/// The first job constructs the [`Simulator`]; later jobs
/// [`Simulator::rebuild`] it in place (or restore a fork-server
/// checkpoint into it), recycling the hot-loop allocations instead of
/// re-growing them per request. The two side slots host `sweep`'s
/// concurrent SeMPE/CTE lanes, which used to build throwaway simulators
/// per request.
#[derive(Debug, Default)]
pub struct Arena {
    sim: Option<Simulator>,
    side: [Option<Simulator>; 2],
}

impl Arena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        Arena::default()
    }

    /// Simulate `prog` under `config`, reusing the arena's simulator.
    /// The rebuild (decode + image load) is attributed to the span's
    /// `compile` phase, the run to `simulate`.
    fn simulate(
        &mut self,
        prog: &Program,
        config: SimConfig,
        fuel: u64,
        deadline: Option<Instant>,
        span: &mut Span,
    ) -> Result<SimResult, ServiceError> {
        let sim = Simulator::rebuild_or_new(&mut self.sim, prog, config)
            .map_err(|e| ServiceError::new(ErrorCode::Compile, e.to_string()))?;
        span.mark("compile");
        let res = sim.run_with_deadline(fuel, deadline).map_err(sim_err);
        span.mark("simulate");
        res
    }

    /// The simulator after the last [`Arena::simulate`] (memory, trace).
    /// Recoverable error — not a panic — if no simulation ran yet: a
    /// request-handling slip must cost one response, not a worker.
    fn sim(&self) -> Result<&Simulator, ServiceError> {
        self.sim.as_ref().ok_or_else(|| {
            ServiceError::new(ErrorCode::Internal, "no simulation ran in this arena")
        })
    }

    /// Drain and sum the host-time ledgers of every arena slot — the
    /// per-request attribution the worker folds into the
    /// `sim_host_us{phase=…}` histograms. Resets all slots, so the next
    /// request on this arena starts a clean ledger.
    pub fn take_host_profile(&mut self) -> HostProfile {
        let mut total = HostProfile::default();
        for sim in std::iter::once(&mut self.sim).chain(self.side.iter_mut()).flatten() {
            total.absorb(&sim.take_host_profile());
        }
        total
    }
}

/// Fork-cache key: `(program digest, config digest)`.
type ForkKey = (u64, u64);

/// FIFO insertion order + keyed checkpoints of the fork cache.
type ForkStore = (HashMap<ForkKey, Arc<Checkpoint>>, VecDeque<ForkKey>);

/// The shared checkpoint store of the fork server: one immutable
/// [`Checkpoint`] per `(program digest, config digest)`, built on first
/// use and shared across the worker pool behind `Arc`s. Bounded FIFO,
/// like the result cache; two workers racing on a miss both build —
/// checkpoints are deterministic, so either insert is correct.
#[derive(Debug)]
pub struct ForkCache {
    capacity: usize,
    inner: Mutex<ForkStore>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
}

impl ForkCache {
    /// An empty store holding at most `capacity` checkpoints, with
    /// private (unregistered) counters.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ForkCache::with_counters(capacity, Arc::new(Counter::new()), Arc::new(Counter::new()))
    }

    /// An empty store whose hit/miss accounting lands in the given
    /// counters — typically `registry.counter("fork_hits_total")` /
    /// `…misses_total`, so `stats` and `metrics` render one ledger.
    #[must_use]
    pub fn with_counters(capacity: usize, hits: Arc<Counter>, misses: Arc<Counter>) -> Self {
        ForkCache { capacity, inner: Mutex::new((HashMap::new(), VecDeque::new())), hits, misses }
    }

    /// Fetch the checkpoint for `(prog, config)`, building (and caching)
    /// it on a miss: construct a simulator — paying the decode and image
    /// load exactly once per (program, machine) — and checkpoint it at
    /// the quiesced post-load point.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the image fails to decode.
    pub fn get_or_build(
        &self,
        prog: &Program,
        config: SimConfig,
    ) -> Result<Arc<Checkpoint>, ServiceError> {
        let key = (prog.digest(), config.digest());
        if let Some(hit) = sync::lock(&self.inner).0.get(&key) {
            self.hits.inc();
            return Ok(Arc::clone(hit));
        }
        self.misses.inc();
        let mut sim = Simulator::new(prog, config)
            .map_err(|e| ServiceError::new(ErrorCode::Compile, e.to_string()))?;
        let cp = Arc::new(
            sim.checkpoint().map_err(|e| ServiceError::new(ErrorCode::Internal, e.to_string()))?,
        );
        if self.capacity > 0 {
            let mut inner = sync::lock(&self.inner);
            if inner.0.insert(key, Arc::clone(&cp)).is_none() {
                inner.1.push_back(key);
                while inner.0.len() > self.capacity {
                    let Some(oldest) = inner.1.pop_front() else { break };
                    inner.0.remove(&oldest);
                }
            }
        }
        Ok(cp)
    }

    /// Checkpoints currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        sync::lock(&self.inner).0.len()
    }

    /// Is the store empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the store.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that had to build a checkpoint.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

/// Where per-trial/per-lane streaming frames go on a v2 connection.
///
/// The worker owns frame transport (sequence numbering, id splicing,
/// completion-queue push); execution code only decides *what* a frame
/// says. Emission must never change the terminal response bytes — the
/// sink observes progress, it does not participate in the result.
pub struct StreamSink<'a> {
    emit: &'a mut dyn FnMut(Json),
}

impl std::fmt::Debug for StreamSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StreamSink")
    }
}

impl<'a> StreamSink<'a> {
    /// Wrap a frame-transport callback.
    pub fn new(emit: &'a mut dyn FnMut(Json)) -> StreamSink<'a> {
        StreamSink { emit }
    }

    /// Emit one progress frame body (payload members only — the
    /// transport adds `id`/`seq`/`partial`).
    pub fn frame(&mut self, body: Json) {
        (self.emit)(body);
    }
}

/// Map a simulator error to the wire: a tripped host deadline becomes
/// `E_DEADLINE` carrying the partial progress, everything else `E_SIM`.
fn sim_err(e: SimError) -> ServiceError {
    let message = e.to_string();
    match e {
        SimError::HostDeadline { cycle, committed } => {
            ServiceError::new(ErrorCode::Deadline, message)
                .with_partial(Json::obj().with("cycles", cycle).with("committed", committed))
        }
        _ => ServiceError::new(ErrorCode::Sim, message),
    }
}

/// `E_DEADLINE` for a budget that expired between simulations (batch
/// items, attack calibration runs).
fn deadline_between(done: usize, total: usize, what: &str) -> ServiceError {
    ServiceError::new(
        ErrorCode::Deadline,
        format!("deadline expired after {done} of {total} {what}"),
    )
    .with_partial(Json::obj().with("items_done", done))
}

fn expired(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

const fn backend_disc(sel: BackendSel) -> u8 {
    match sel {
        BackendSel::Baseline => 0,
        BackendSel::Sempe => 1,
        BackendSel::Cte => 2,
    }
}

const fn mode_disc(mode: SecurityMode) -> u8 {
    match mode {
        SecurityMode::Baseline => 0,
        SecurityMode::Sempe => 1,
    }
}

const fn attack_sel(mode: SecurityMode) -> BackendSel {
    match mode {
        SecurityMode::Baseline => BackendSel::Baseline,
        SecurityMode::Sempe => BackendSel::Sempe,
    }
}

/// The content-addressed cache key of a compute request (`None` for
/// `stats`/`shutdown`, which never reach the job queue).
#[must_use]
pub fn cache_key(req: &Request) -> Option<CacheKey> {
    match req {
        Request::Compile { source, backend } => Some(CacheKey {
            op: "compile",
            source_hash: fnv1a(source.as_bytes()),
            backend: backend_disc(*backend),
            mode: mode_disc(backend.mode()),
            config_digest: 0,
            params_digest: 0,
        }),
        Request::Run { source, backend, mode, max_cycles } => Some(CacheKey {
            op: "run",
            source_hash: fnv1a(source.as_bytes()),
            backend: backend_disc(*backend),
            mode: mode_disc(backend.mode()),
            // The stepping (detailed vs tiered) is a digest component,
            // so the two tiers never alias in the result cache.
            config_digest: mode.sim_config(*backend).digest(),
            params_digest: *max_cycles,
        }),
        Request::Sweep { source, max_cycles } => Some(CacheKey {
            op: "sweep",
            source_hash: fnv1a(source.as_bytes()),
            backend: u8::MAX,
            mode: u8::MAX,
            config_digest: BackendSel::ALL
                .iter()
                .fold(0, |acc, sel| acc ^ sel.sim_config().digest()),
            params_digest: *max_cycles,
        }),
        Request::Attack { source, mode, secret, secret_value, candidates, max_cycles } => {
            let mut params = Fnv1a::new();
            params.write_u64(*max_cycles);
            params.write(secret.as_deref().unwrap_or("\u{0}first").as_bytes());
            match secret_value {
                Some(v) => {
                    params.write_u64(1);
                    params.write_u64(*v);
                }
                None => params.write_u64(0),
            }
            for c in candidates {
                params.write_u64(*c);
            }
            let sel = attack_sel(*mode);
            Some(CacheKey {
                op: "attack",
                source_hash: fnv1a(source.as_bytes()),
                backend: backend_disc(sel),
                mode: mode_disc(*mode),
                config_digest: sel.sim_config().with_trace().digest(),
                params_digest: params.finish(),
            })
        }
        Request::Batch { source, backend, mode, inputs, leak_check, max_cycles } => {
            let mut params = Fnv1a::new();
            params.write_u64(*max_cycles);
            params.write_u64(u64::from(*leak_check));
            params.write_u64(inputs.len() as u64);
            for item in inputs {
                params.write_u64(item.len() as u64);
                for (name, value) in item {
                    params.write_u64(name.len() as u64);
                    params.write(name.as_bytes());
                    params.write_u64(*value);
                }
            }
            let base = mode.sim_config(*backend);
            let config = if *leak_check { base.with_trace() } else { base };
            Some(CacheKey {
                op: "batch",
                source_hash: fnv1a(source.as_bytes()),
                backend: backend_disc(*backend),
                mode: mode_disc(backend.mode()),
                config_digest: config.digest(),
                params_digest: params.finish(),
            })
        }
        Request::Stats
        | Request::Health
        | Request::Metrics { .. }
        | Request::Shutdown
        | Request::Hello { .. } => None,
    }
}

/// Execute a compute request, returning the encoded response line
/// (without trailing newline).
///
/// # Errors
///
/// [`ServiceError`] describing the failure; `stats`/`health`/`shutdown`
/// requests are rejected here because they are served inline by the
/// connection handler, never by a worker.
pub fn execute(
    req: &Request,
    arena: &mut Arena,
    forks: &ForkCache,
) -> Result<String, ServiceError> {
    execute_with_deadline(req, arena, forks, None)
}

/// [`execute`] under an optional host wall-clock deadline: the running
/// simulation polls it and bails with [`ErrorCode::Deadline`] (carrying
/// partial stats) instead of pinning the worker until the cycle budget
/// runs dry.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_deadline(
    req: &Request,
    arena: &mut Arena,
    forks: &ForkCache,
    deadline: Option<Instant>,
) -> Result<String, ServiceError> {
    execute_traced(req, arena, forks, deadline, &mut Span::begin())
}

/// [`execute_with_deadline`] with per-phase host-time attribution: the
/// compile, checkpoint-restore, simulate, and encode portions of the
/// request land in `span`, keyed by the phase names documented in
/// `docs/observability.md`. The span only observes — the response bytes
/// are identical with or without it.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_traced(
    req: &Request,
    arena: &mut Arena,
    forks: &ForkCache,
    deadline: Option<Instant>,
    span: &mut Span,
) -> Result<String, ServiceError> {
    execute_streamed(req, arena, forks, deadline, span, None)
}

/// [`execute_traced`] with an optional progress-frame sink: on a v2
/// connection, `batch` emits one frame per trial and `sweep` one per
/// lane while the request is still running. With `sink == None` (every
/// legacy/v1 path) execution is byte-identical to before streaming
/// existed.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_streamed(
    req: &Request,
    arena: &mut Arena,
    forks: &ForkCache,
    deadline: Option<Instant>,
    span: &mut Span,
    mut sink: Option<&mut StreamSink<'_>>,
) -> Result<String, ServiceError> {
    span.skip();
    let body = match req {
        Request::Compile { source, backend } => {
            let body = do_compile(source, *backend)?;
            span.mark("compile");
            body
        }
        Request::Run { source, backend, mode, max_cycles } => {
            do_run(source, *backend, *mode, *max_cycles, arena, deadline, span)?
        }
        Request::Sweep { source, max_cycles } => {
            do_sweep(source, *max_cycles, arena, forks, deadline, span, sink.as_deref_mut())?
        }
        Request::Attack { source, mode, secret, secret_value, candidates, max_cycles } => {
            do_attack(
                source,
                *mode,
                secret.as_deref(),
                *secret_value,
                candidates,
                *max_cycles,
                arena,
                forks,
                deadline,
                span,
            )?
        }
        Request::Batch { source, backend, mode, inputs, leak_check, max_cycles } => do_batch(
            source,
            *backend,
            *mode,
            inputs,
            *leak_check,
            *max_cycles,
            arena,
            forks,
            deadline,
            span,
            sink,
        )?,
        Request::Stats
        | Request::Health
        | Request::Metrics { .. }
        | Request::Shutdown
        | Request::Hello { .. } => {
            return Err(ServiceError::new(ErrorCode::Internal, "control request reached a worker"))
        }
    };
    span.skip();
    let line = body.encode();
    span.mark("encode");
    Ok(line)
}

fn parse_source(source: &str) -> Result<ParsedProgram, ServiceError> {
    parse_wir(source).map_err(|e| ServiceError::new(ErrorCode::Wir, e.to_string()))
}

fn compile_sel(
    prog: &WirProgram,
    sel: BackendSel,
) -> Result<sempe_compile::CompiledWorkload, ServiceError> {
    compile(prog, sel.backend()).map_err(|e| ServiceError::new(ErrorCode::Compile, e.to_string()))
}

fn hex(v: u64) -> String {
    format!("{v:016x}")
}

fn do_compile(source: &str, sel: BackendSel) -> Result<Json, ServiceError> {
    let parsed = parse_source(source)?;
    let taint = analyze_taint(&parsed.program, &parsed.secrets);
    let cw = compile_sel(&parsed.program, sel)?;
    let decode_mode = match sel {
        BackendSel::Sempe => DecodeMode::Sempe,
        BackendSel::Baseline | BackendSel::Cte => DecodeMode::Legacy,
    };
    let decoded = cw
        .program()
        .decoded(decode_mode)
        .map_err(|e| ServiceError::new(ErrorCode::Compile, e.to_string()))?;
    let listing = disasm::listing(cw.program(), decode_mode)
        .map_err(|e| ServiceError::new(ErrorCode::Compile, e.to_string()))?;
    let secret_names: Vec<Json> =
        parsed.secrets.iter().map(|v| Json::from(parsed.program.var_name(*v))).collect();
    Ok(Json::obj()
        .with("ok", true)
        .with("type", "compile")
        .with("backend", sel.name())
        .with("insns", decoded.len())
        .with("code_bytes", cw.program().code_len())
        .with("code_digest", hex(cw.program().digest()))
        .with("source_hash", hex(fnv1a(source.as_bytes())))
        .with("taint_clean", taint.is_clean())
        .with("secrets", Json::Arr(secret_names))
        .with("disasm", listing))
}

/// The measured facts of one simulation, shared by `run` and `sweep`.
struct RunData {
    cycles: u64,
    committed: u64,
    ff_committed: u64,
    secure_committed: u64,
    squashes: u64,
    drain_stall_cycles: u64,
    ipc: f64,
    outputs: Vec<u64>,
}

impl RunData {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("cycles", self.cycles)
            .with("committed", self.committed)
            .with("ff_committed", self.ff_committed)
            .with("ipc", self.ipc)
            .with("secure_committed", self.secure_committed)
            .with("squashes", self.squashes)
            .with("drain_stall_cycles", self.drain_stall_cycles)
            .with("outputs", self.outputs.clone())
    }
}

fn arena_run(
    prog: &WirProgram,
    sel: BackendSel,
    mode: ExecMode,
    fuel: u64,
    arena: &mut Arena,
    deadline: Option<Instant>,
    span: &mut Span,
) -> Result<RunData, ServiceError> {
    span.skip();
    let cw = compile_sel(prog, sel)?;
    span.mark("compile");
    let res = arena.simulate(cw.program(), mode.sim_config(sel), fuel, deadline, span)?;
    let stats = res.stats;
    Ok(RunData {
        cycles: res.cycles(),
        committed: res.committed(),
        ff_committed: stats.ff_committed,
        secure_committed: stats.secure_committed,
        squashes: stats.squashes,
        drain_stall_cycles: stats.drain_stall_cycles,
        ipc: (stats.ipc() * 1e6).round() / 1e6,
        outputs: cw.read_outputs(arena.sim()?.mem()),
    })
}

/// One fork-server trial: restore `cp` into `slot` (hydrating it on
/// first use), patch the given data words, run, and collect the run
/// facts. Bit-for-bit equal to a cold build-and-run of the patched
/// program, at a fraction of the setup cost.
fn forked_run(
    slot: &mut Option<Simulator>,
    cp: &Checkpoint,
    cw: &sempe_compile::CompiledWorkload,
    patches: &[(Addr, u64)],
    fuel: u64,
    deadline: Option<Instant>,
    span: &mut Span,
) -> Result<RunData, ServiceError> {
    let restore_start = Instant::now();
    let sim = Simulator::restore_or_new(slot, cp);
    for &(addr, value) in patches {
        sim.mem_mut().write_u64(addr, value);
    }
    span.add("checkpoint_restore", restore_start.elapsed());
    let run_start = Instant::now();
    let res = sim.run_with_deadline(fuel, deadline).map_err(sim_err);
    span.add("simulate", run_start.elapsed());
    let res = res?;
    let stats = res.stats;
    Ok(RunData {
        cycles: res.cycles(),
        committed: res.committed(),
        ff_committed: stats.ff_committed,
        secure_committed: stats.secure_committed,
        squashes: stats.squashes,
        drain_stall_cycles: stats.drain_stall_cycles,
        ipc: (stats.ipc() * 1e6).round() / 1e6,
        outputs: cw.read_outputs(sim.mem()),
    })
}

fn do_run(
    source: &str,
    sel: BackendSel,
    mode: ExecMode,
    fuel: u64,
    arena: &mut Arena,
    deadline: Option<Instant>,
    span: &mut Span,
) -> Result<Json, ServiceError> {
    let parsed = parse_source(source)?;
    let data = arena_run(&parsed.program, sel, mode, fuel, arena, deadline, span)?;
    let mut body = Json::obj()
        .with("ok", true)
        .with("type", "run")
        .with("backend", sel.name())
        .with("mode", mode.name());
    if let Json::Obj(run_members) = data.to_json() {
        if let Json::Obj(members) = &mut body {
            members.extend(run_members);
        }
    }
    Ok(body
        .with("source_hash", hex(fnv1a(source.as_bytes())))
        .with("config_digest", hex(mode.sim_config(sel).digest())))
}

/// A streaming frame payload: the lane/item tag followed by the run
/// facts, same member order as the terminal response's result objects.
fn progress_frame(tag: &str, value: Json, data: &RunData) -> Json {
    let mut frame = Json::obj().with(tag, value);
    if let Json::Obj(members) = &mut frame {
        if let Json::Obj(src) = data.to_json() {
            members.extend(src);
        }
    }
    frame
}

#[allow(clippy::cast_precision_loss)]
fn do_sweep(
    source: &str,
    fuel: u64,
    arena: &mut Arena,
    forks: &ForkCache,
    deadline: Option<Instant>,
    span: &mut Span,
    mut sink: Option<&mut StreamSink<'_>>,
) -> Result<Json, ServiceError> {
    let parsed = parse_source(source)?;
    let prog = &parsed.program;
    // Compile all three combinations and fetch (or build) their shared
    // checkpoints up front; the concurrent lanes then only restore+run.
    span.skip();
    let mut lanes = Vec::with_capacity(BackendSel::ALL.len());
    for sel in BackendSel::ALL {
        let cw = compile_sel(prog, sel)?;
        span.mark("compile");
        let cp = forks.get_or_build(cw.program(), sel.sim_config())?;
        span.mark("checkpoint_restore");
        lanes.push((cw, cp));
    }
    let [(base_cw, base_cp), (sempe_cw, sempe_cp), (cte_cw, cte_cp)]: [_; 3] =
        lanes.try_into().unwrap_or_else(|_| unreachable!("three backends"));
    let join = |h: std::thread::ScopedJoinHandle<'_, Result<RunData, ServiceError>>| {
        h.join().unwrap_or_else(|_| {
            Err(ServiceError::new(ErrorCode::Internal, "sweep worker panicked"))
        })
    };
    // All three combinations run concurrently: SeMPE and CTE (the long
    // poles) on this worker's persistent side slots, the baseline on the
    // main arena slot — no throwaway simulators.
    // The side lanes run on their own threads, so each gets a throwaway
    // span (a `&mut Span` cannot cross the scope); the whole concurrent
    // section is attributed to `simulate` as main-thread wall time,
    // which keeps the span's phase sum ≤ the request's wall time.
    let Arena { sim, side } = arena;
    let [side_a, side_b] = side;
    let (baseline, sempe, cte) = std::thread::scope(|s| {
        let sempe = s.spawn(|| {
            forked_run(side_a, &sempe_cp, &sempe_cw, &[], fuel, deadline, &mut Span::begin())
        });
        let cte = s.spawn(|| {
            forked_run(side_b, &cte_cp, &cte_cw, &[], fuel, deadline, &mut Span::begin())
        });
        let baseline = forked_run(sim, &base_cp, &base_cw, &[], fuel, deadline, &mut Span::begin());
        // Per-lane streaming: each lane's frame goes out as soon as its
        // result exists, from this (the worker) thread — the baseline
        // before the side lanes are joined.
        if let (Some(sink), Ok(data)) = (sink.as_deref_mut(), &baseline) {
            sink.frame(progress_frame("lane", Json::from("baseline"), data));
        }
        let sempe = join(sempe);
        if let (Some(sink), Ok(data)) = (sink.as_deref_mut(), &sempe) {
            sink.frame(progress_frame("lane", Json::from("sempe"), data));
        }
        let cte = join(cte);
        if let (Some(sink), Ok(data)) = (sink, &cte) {
            sink.frame(progress_frame("lane", Json::from("cte"), data));
        }
        (baseline, sempe, cte)
    });
    span.mark("simulate");
    let (baseline, sempe, cte) = (baseline?, sempe?, cte?);
    let outputs_match = baseline.outputs == sempe.outputs && baseline.outputs == cte.outputs;
    let ratio = |r: &RunData| (r.cycles as f64 / baseline.cycles.max(1) as f64 * 1e6).round() / 1e6;
    Ok(Json::obj()
        .with("ok", true)
        .with("type", "sweep")
        .with(
            "runs",
            Json::obj()
                .with("baseline", baseline.to_json())
                .with("sempe", sempe.to_json())
                .with("cte", cte.to_json()),
        )
        .with("overhead", Json::obj().with("sempe", ratio(&sempe)).with("cte", ratio(&cte)))
        .with("outputs_match", outputs_match)
        .with("source_hash", hex(fnv1a(source.as_bytes()))))
}

type BranchHistogram = BTreeMap<Addr, (u64, u64)>;

#[allow(clippy::too_many_arguments)] // request-field plumbing
fn do_attack(
    source: &str,
    mode: SecurityMode,
    secret: Option<&str>,
    secret_value: Option<u64>,
    candidates: &[u64],
    fuel: u64,
    arena: &mut Arena,
    forks: &ForkCache,
    deadline: Option<Instant>,
    span: &mut Span,
) -> Result<Json, ServiceError> {
    let parsed = parse_source(source)?;
    let vid = match secret {
        Some(name) => parsed.program.find_var(name).ok_or_else(|| {
            ServiceError::new(ErrorCode::BadRequest, format!("unknown variable `{name}`"))
        })?,
        None => *parsed.secrets.first().ok_or_else(|| {
            ServiceError::new(ErrorCode::BadRequest, "program declares no secret variable")
        })?,
    };
    if !parsed.secrets.contains(&vid) {
        return Err(ServiceError::new(
            ErrorCode::BadRequest,
            format!("variable `{}` is not declared secret", parsed.program.var_name(vid)),
        ));
    }
    let victim_secret = secret_value.unwrap_or_else(|| parsed.program.var_init(vid));
    let sel = attack_sel(mode);
    let config = sel.sim_config().with_trace();

    // The attacker's calibration phase: run the known code under every
    // candidate secret on its own (identical) machine. One compile + one
    // checkpoint; per candidate the fork server restores the checkpoint
    // and patches the secret's data slot — identical, bit for bit, to a
    // cold build with that initializer, without the per-trial setup.
    span.skip();
    let cw = compile_sel(&parsed.program, sel)?;
    span.mark("compile");
    let secret_addr = cw.var_addr(vid);
    let cp = forks.get_or_build(cw.program(), config)?;
    span.mark("checkpoint_restore");
    let run_with = |value: u64,
                    arena: &mut Arena,
                    span: &mut Span|
     -> Result<(u64, ObservationTrace), ServiceError> {
        let data =
            forked_run(&mut arena.sim, &cp, &cw, &[(secret_addr, value)], fuel, deadline, span)?;
        Ok((data.cycles, arena.sim()?.trace().clone()))
    };
    let mut calib: Vec<(u64, u64, ObservationTrace)> = Vec::with_capacity(candidates.len());
    for (done, &c) in candidates.iter().enumerate() {
        if expired(deadline) {
            return Err(deadline_between(done, candidates.len(), "calibration runs"));
        }
        let (cycles, trace) = run_with(c, arena, span)?;
        calib.push((c, cycles, trace));
    }
    // The victim's run (reused when the true secret is also a candidate).
    let victim_trace = match calib.iter().find(|(c, _, _)| *c == victim_secret) {
        Some((_, _, t)) => t.clone(),
        None => run_with(victim_secret, arena, span)?.1,
    };

    // Timing attacker (Brumley–Boneh style).
    let mut timing = TimingAttacker::new();
    for (c, _, trace) in &calib {
        timing.calibrate(c.to_string(), trace);
    }
    let timing_guess = timing.classify(&victim_trace).map(str::to_string);
    let timing_recovered = timing_guess.as_deref() == Some(victim_secret.to_string().as_str());

    // Branch-profile attacker (Acıiçmez style): a branch leaks when its
    // predictor-update histogram depends on the candidate secret.
    let histograms: Vec<BranchHistogram> =
        calib.iter().map(|(_, _, t)| BranchProfileAttacker::update_histogram(t)).collect();
    let all_pcs: BTreeSet<Addr> = histograms.iter().flat_map(|h| h.keys().copied()).collect();
    let leaking: Vec<Addr> = all_pcs
        .into_iter()
        .filter(|pc| {
            let views: Vec<(u64, u64)> =
                histograms.iter().map(|h| h.get(pc).copied().unwrap_or((0, 0))).collect();
            views.iter().any(|v| *v != views[0])
        })
        .collect();
    let victim_hist = BranchProfileAttacker::update_histogram(&victim_trace);
    let branch_matches: Vec<u64> = calib
        .iter()
        .zip(&histograms)
        .filter(|(_, h)| **h == victim_hist)
        .map(|((c, _, _), _)| *c)
        .collect();
    let branch_guess = match branch_matches.as_slice() {
        [only] => Some(*only),
        _ => None,
    };
    let branch_recovered = !leaking.is_empty() && branch_guess == Some(victim_secret);
    let recovered_key =
        leaking.first().map(|pc| BranchProfileAttacker::recover_key(&victim_trace, *pc));

    // Whole-trace distinguishability under the full threat model.
    let mut divergent_pairs = 0u64;
    for i in 0..calib.len() {
        for j in (i + 1)..calib.len() {
            if first_divergence(&calib[i].2, &calib[j].2, Strictness::Full).is_some() {
                divergent_pairs += 1;
            }
        }
    }

    let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
    Ok(Json::obj()
        .with("ok", true)
        .with("type", "attack")
        .with("mode", mode.name())
        .with("secret", parsed.program.var_name(vid))
        .with("secret_value", victim_secret)
        .with("candidates", candidates.to_vec())
        .with("cycles", calib.iter().map(|(_, c, _)| *c).collect::<Vec<u64>>())
        .with(
            "timing",
            Json::obj()
                .with("can_distinguish", timing.can_distinguish())
                .with("guess", timing_guess.map_or(Json::Null, Json::Str))
                .with("recovered", timing_recovered),
        )
        .with(
            "branch",
            Json::obj()
                .with("leaking_branches", leaking.len())
                .with("guess", opt_u64(branch_guess))
                .with("recovered", branch_recovered)
                .with("recovered_key", opt_u64(recovered_key)),
        )
        .with(
            "trace",
            Json::obj().with("events", victim_trace.len()).with("divergent_pairs", divergent_pairs),
        )
        .with("source_hash", hex(fnv1a(source.as_bytes()))))
}

/// The `batch` op: one program, N input vectors, one shared checkpoint.
/// Items run in request order; the response carries one result object
/// per item (a stream in arrival order) plus, under `leak_check`, the
/// per-pair leak verdicts.
#[allow(clippy::too_many_arguments)] // request-field plumbing
fn do_batch(
    source: &str,
    sel: BackendSel,
    mode: ExecMode,
    inputs: &[Vec<(String, u64)>],
    leak_check: bool,
    fuel: u64,
    arena: &mut Arena,
    forks: &ForkCache,
    deadline: Option<Instant>,
    span: &mut Span,
    mut sink: Option<&mut StreamSink<'_>>,
) -> Result<Json, ServiceError> {
    let parsed = parse_source(source)?;
    span.skip();
    let cw = compile_sel(&parsed.program, sel)?;
    span.mark("compile");
    // The stepping rides in the config, so tiered trials share one
    // checkpoint keyed apart from the detailed one; each restored trial
    // then fast-forwards functionally to the first region of interest.
    let base = mode.sim_config(sel);
    let config = if leak_check { base.with_trace() } else { base };
    let cp = forks.get_or_build(cw.program(), config)?;
    span.mark("checkpoint_restore");

    // Resolve every named variable once, before any simulation runs.
    let mut patched_inputs: Vec<Vec<(Addr, u64)>> = Vec::with_capacity(inputs.len());
    for item in inputs {
        let mut patches = Vec::with_capacity(item.len());
        for (name, value) in item {
            let vid = parsed.program.find_var(name).ok_or_else(|| {
                ServiceError::new(ErrorCode::BadRequest, format!("unknown variable `{name}`"))
            })?;
            patches.push((cw.var_addr(vid), *value));
        }
        patched_inputs.push(patches);
    }

    // Items run in request order; each leak pair is judged as soon as
    // its second item finishes, so at most one trace (the pending even
    // item's) is retained at a time instead of all N.
    let mut results: Vec<RunData> = Vec::with_capacity(inputs.len());
    let mut pairs: Vec<Json> = Vec::with_capacity(inputs.len() / 2);
    let mut all_clear = true;
    let mut pending_trace: Option<ObservationTrace> = None;
    for (idx, patches) in patched_inputs.iter().enumerate() {
        if expired(deadline) {
            return Err(deadline_between(idx, inputs.len(), "batch items"));
        }
        let data = forked_run(&mut arena.sim, &cp, &cw, patches, fuel, deadline, span)?;
        // Per-trial streaming: the frame flows while later items are
        // still queued behind this one.
        if let Some(sink) = sink.as_deref_mut() {
            sink.frame(progress_frame("item", Json::U64(idx as u64), &data));
        }
        if leak_check {
            let trace = arena.sim()?.trace().clone();
            match pending_trace.take() {
                None => pending_trace = Some(trace),
                Some(first) => {
                    let a = &results[idx - 1];
                    let cycles_equal = a.cycles == data.cycles;
                    let committed_equal = a.committed == data.committed;
                    let trace_identical =
                        first_divergence(&first, &trace, Strictness::Full).is_none();
                    let clear = cycles_equal && committed_equal && trace_identical;
                    all_clear &= clear;
                    pairs.push(
                        Json::obj()
                            .with("items", vec![idx as u64 - 1, idx as u64])
                            .with("cycles_equal", cycles_equal)
                            .with("committed_equal", committed_equal)
                            .with("trace_identical", trace_identical)
                            .with("clear", clear),
                    );
                }
            }
        }
        results.push(data);
    }

    let mut body = Json::obj()
        .with("ok", true)
        .with("type", "batch")
        .with("backend", sel.name())
        .with("mode", mode.name())
        .with("items", inputs.len())
        .with("results", Json::Arr(results.iter().map(RunData::to_json).collect()));
    if leak_check {
        body = body
            .with("leak", Json::obj().with("pairs", Json::Arr(pairs)).with("all_clear", all_clear));
    }
    Ok(body
        .with("source_hash", hex(fnv1a(source.as_bytes())))
        .with("config_digest", hex(config.digest())))
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEXP: &str = r"
        secret key = 0b1011;
        var r = 1;
        var base = 7;
        var i = 0;
        var bit = 0;
        while (i < 4) bound 5 {
            bit = (key >> i) & 1;
            if secret (bit) { r = (r * base) % 1000003; }
            base = (base * base) % 1000003;
            i = i + 1;
        }
        output r;
    ";

    fn attack_req(mode: &str) -> Request {
        Request::parse(&format!(
            r#"{{"type":"attack","source":{},"mode":"{mode}","candidates":[11,2],"max_cycles":50000000}}"#,
            sempe_core::json::escape(MODEXP)
        ))
        .unwrap()
    }

    #[test]
    fn compile_reports_metadata_and_disassembly() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let req = Request::Compile { source: MODEXP.to_string(), backend: BackendSel::Sempe };
        let body = execute(&req, &mut arena, &forks).unwrap();
        let v = sempe_core::json::parse(&body).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("taint_clean").and_then(Json::as_bool), Some(true));
        assert!(v.get("insns").and_then(Json::as_u64).unwrap() > 10);
        assert!(v.get("disasm").and_then(Json::as_str).unwrap().contains("eosjmp"));
    }

    #[test]
    fn run_and_sweep_agree_on_outputs() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let run = Request::Run {
            source: MODEXP.to_string(),
            backend: BackendSel::Baseline,
            mode: ExecMode::Detailed,
            max_cycles: 50_000_000,
        };
        let run_v = sempe_core::json::parse(&execute(&run, &mut arena, &forks).unwrap()).unwrap();
        let want = 7u64.pow(0b1011) % 1_000_003;
        let outputs = run_v.get("outputs").and_then(Json::as_array).unwrap();
        assert_eq!(outputs[0].as_u64(), Some(want));

        let sweep = Request::Sweep { source: MODEXP.to_string(), max_cycles: 50_000_000 };
        let sweep_v =
            sempe_core::json::parse(&execute(&sweep, &mut arena, &forks).unwrap()).unwrap();
        assert_eq!(sweep_v.get("outputs_match").and_then(Json::as_bool), Some(true));
        let overhead = sweep_v.get("overhead").unwrap();
        assert!(overhead.get("sempe").and_then(Json::as_f64).unwrap() > 1.0);
    }

    #[test]
    fn attack_recovers_on_baseline_and_is_blind_on_sempe() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let base =
            sempe_core::json::parse(&execute(&attack_req("baseline"), &mut arena, &forks).unwrap())
                .unwrap();
        let t = base.get("timing").unwrap();
        assert_eq!(t.get("can_distinguish").and_then(Json::as_bool), Some(true));
        assert_eq!(t.get("recovered").and_then(Json::as_bool), Some(true));
        let b = base.get("branch").unwrap();
        assert!(b.get("leaking_branches").and_then(Json::as_u64).unwrap() >= 1);
        assert_eq!(b.get("recovered_key").and_then(Json::as_u64), Some(0b1011));

        let sempe =
            sempe_core::json::parse(&execute(&attack_req("sempe"), &mut arena, &forks).unwrap())
                .unwrap();
        let t = sempe.get("timing").unwrap();
        assert_eq!(t.get("can_distinguish").and_then(Json::as_bool), Some(false));
        assert_eq!(t.get("recovered").and_then(Json::as_bool), Some(false));
        let b = sempe.get("branch").unwrap();
        assert_eq!(b.get("leaking_branches").and_then(Json::as_u64), Some(0));
        assert_eq!(b.get("recovered").and_then(Json::as_bool), Some(false));
        assert_eq!(
            sempe.get("trace").unwrap().get("divergent_pairs").and_then(Json::as_u64),
            Some(0)
        );
    }

    #[test]
    fn execution_is_deterministic_across_arenas() {
        let req = Request::Run {
            source: MODEXP.to_string(),
            backend: BackendSel::Sempe,
            mode: ExecMode::Detailed,
            max_cycles: 50_000_000,
        };
        let mut a = Arena::new();
        let mut b = Arena::new();
        let forks = ForkCache::new(8);
        // Dirty arena `b` with unrelated work first.
        let _ = execute(&attack_req("baseline"), &mut b, &forks).unwrap();
        assert_eq!(execute(&req, &mut a, &forks).unwrap(), execute(&req, &mut b, &forks).unwrap());
    }

    fn run_req(backend: BackendSel, mode: ExecMode) -> Request {
        Request::Run { source: MODEXP.to_string(), backend, mode, max_cycles: 50_000_000 }
    }

    #[test]
    fn tiered_run_matches_detailed_architecturally_and_keys_apart() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let detailed = sempe_core::json::parse(
            &execute(&run_req(BackendSel::Sempe, ExecMode::Detailed), &mut arena, &forks).unwrap(),
        )
        .unwrap();
        let tiered = sempe_core::json::parse(
            &execute(&run_req(BackendSel::Sempe, ExecMode::Tiered), &mut arena, &forks).unwrap(),
        )
        .unwrap();
        assert_eq!(tiered.get("mode").and_then(Json::as_str), Some("tiered"));
        assert_eq!(detailed.get("mode").and_then(Json::as_str), Some("detailed"));
        // Fast-forwarding is architecturally invisible…
        assert_eq!(tiered.get("outputs"), detailed.get("outputs"));
        assert_eq!(tiered.get("committed"), detailed.get("committed"));
        // …but attributed: the public modexp loop fast-forwards.
        assert!(tiered.get("ff_committed").and_then(Json::as_u64).unwrap() > 0);
        assert_eq!(detailed.get("ff_committed").and_then(Json::as_u64), Some(0));
        // And the two tiers can never alias in the result cache.
        assert_ne!(
            cache_key(&run_req(BackendSel::Sempe, ExecMode::Tiered)).unwrap(),
            cache_key(&run_req(BackendSel::Sempe, ExecMode::Detailed)).unwrap()
        );
    }

    #[test]
    fn tiered_then_detailed_in_one_arena_matches_a_cold_run() {
        // The arena-reuse regression: a tiered run leaves warm caches,
        // predictors, and FF bookkeeping in the worker's simulator; the
        // next request's rebuild must reset all of it, or a recycled
        // arena answers differently than a fresh worker (breaking the
        // byte-identical determinism the result cache rests on).
        let forks = ForkCache::new(8);
        for (first, then) in
            [(ExecMode::Tiered, ExecMode::Detailed), (ExecMode::Detailed, ExecMode::Tiered)]
        {
            let mut recycled = Arena::new();
            let _ = execute(&run_req(BackendSel::Sempe, first), &mut recycled, &forks).unwrap();
            let warm = execute(&run_req(BackendSel::Sempe, then), &mut recycled, &forks).unwrap();
            let cold =
                execute(&run_req(BackendSel::Sempe, then), &mut Arena::new(), &forks).unwrap();
            assert_eq!(warm, cold, "{first:?} then {then:?}: recycled arena must answer cold");
        }
    }

    #[test]
    fn tiered_batch_keys_its_own_checkpoint_and_matches_detailed_outputs() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let keys = [0u64, 15];
        let req = |mode| Request::Batch {
            source: MODEXP.to_string(),
            backend: BackendSel::Sempe,
            mode,
            inputs: keys.iter().map(|k| vec![("key".to_string(), *k)]).collect(),
            leak_check: false,
            max_cycles: 50_000_000,
        };
        let detailed = sempe_core::json::parse(
            &execute(&req(ExecMode::Detailed), &mut arena, &forks).unwrap(),
        )
        .unwrap();
        let tiered =
            sempe_core::json::parse(&execute(&req(ExecMode::Tiered), &mut arena, &forks).unwrap())
                .unwrap();
        let items = |v: &Json| v.get("results").and_then(Json::as_array).unwrap().to_vec();
        for (d, t) in items(&detailed).iter().zip(items(&tiered).iter()) {
            assert_eq!(d.get("outputs"), t.get("outputs"));
            assert_eq!(d.get("committed"), t.get("committed"));
            assert!(t.get("ff_committed").and_then(Json::as_u64).unwrap() > 0);
        }
        // One checkpoint per (program, config) — the stepping is part of
        // the config digest, so the two modes built separate ones.
        assert_eq!(forks.len(), 2);
    }

    #[test]
    fn cache_keys_separate_requests() {
        let run = |backend| Request::Run {
            source: MODEXP.to_string(),
            backend,
            mode: ExecMode::Detailed,
            max_cycles: 1000,
        };
        let k1 = cache_key(&run(BackendSel::Sempe)).unwrap();
        let k2 = cache_key(&run(BackendSel::Baseline)).unwrap();
        let k3 = cache_key(&run(BackendSel::Cte)).unwrap();
        assert_ne!(k1, k2);
        assert_ne!(k2, k3, "cte and baseline share a machine but not a backend");
        assert_eq!(k1, cache_key(&run(BackendSel::Sempe)).unwrap());
        assert!(cache_key(&Request::Stats).is_none());
        assert!(cache_key(&Request::Shutdown).is_none());
    }

    #[test]
    fn cache_keys_distinguish_beyond_float_precision() {
        // Program/config digests and attack candidates are full-width
        // u64s; two requests that differ only above 2^53 must hash to
        // different cache keys (a float-precision JSON layer would have
        // collapsed them into silent cache aliasing).
        let req = |c: u64| Request::Attack {
            source: MODEXP.to_string(),
            mode: SecurityMode::Baseline,
            secret: None,
            secret_value: None,
            candidates: vec![0, c],
            max_cycles: 1000,
        };
        let a = cache_key(&req((1 << 53) + 1)).unwrap();
        let b = cache_key(&req(1 << 53)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn expired_deadline_yields_e_deadline_with_partial_stats() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        // Long-running loop: the run-loop's deadline poll must trip long
        // before the cycle budget is spent.
        let source = r"
            var i = 0;
            while (i < 1000000) bound 1000001 { i = i + 1; }
            output i;
        ";
        let req = Request::Run {
            source: source.to_string(),
            backend: BackendSel::Baseline,
            mode: ExecMode::Detailed,
            max_cycles: 100_000_000,
        };
        let start = Instant::now();
        let err =
            execute_with_deadline(&req, &mut arena, &forks, Some(Instant::now())).unwrap_err();
        assert_eq!(err.code, ErrorCode::Deadline);
        assert!(start.elapsed() < std::time::Duration::from_secs(30), "deadline must cut the run");
        let partial = err.partial.expect("deadline errors carry partial progress");
        assert!(partial.get("cycles").and_then(Json::as_u64).is_some());

        // A batch whose budget is already gone fails between items, with
        // the item count it managed.
        let req = batch_req(BackendSel::Baseline, &[1, 2], false);
        let err =
            execute_with_deadline(&req, &mut arena, &forks, Some(Instant::now())).unwrap_err();
        assert_eq!(err.code, ErrorCode::Deadline);
        assert_eq!(
            err.partial.unwrap().get("items_done").and_then(Json::as_u64),
            Some(0),
            "nothing ran before the expired budget was noticed"
        );

        // A generous deadline changes nothing: byte-identical to no
        // deadline at all (the cache invariant).
        let req = Request::Run {
            source: MODEXP.to_string(),
            backend: BackendSel::Baseline,
            mode: ExecMode::Detailed,
            max_cycles: 50_000_000,
        };
        let relaxed = Instant::now() + std::time::Duration::from_secs(600);
        assert_eq!(
            execute_with_deadline(&req, &mut arena, &forks, Some(relaxed)).unwrap(),
            execute(&req, &mut arena, &forks).unwrap()
        );
    }

    #[test]
    fn wir_errors_surface_with_the_right_code() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let req = Request::Compile { source: "var x = @;".into(), backend: BackendSel::Sempe };
        let err = execute(&req, &mut arena, &forks).unwrap_err();
        assert_eq!(err.code, ErrorCode::Wir);
        let req = Request::Attack {
            source: "var x = 0; output x;".into(),
            mode: SecurityMode::Baseline,
            secret: None,
            secret_value: None,
            candidates: vec![0, 1],
            max_cycles: 1000,
        };
        assert_eq!(execute(&req, &mut arena, &forks).unwrap_err().code, ErrorCode::BadRequest);
    }

    fn batch_req(backend: BackendSel, keys: &[u64], leak_check: bool) -> Request {
        Request::Batch {
            source: MODEXP.to_string(),
            backend,
            mode: ExecMode::Detailed,
            inputs: keys.iter().map(|k| vec![("key".to_string(), *k)]).collect(),
            leak_check,
            max_cycles: 50_000_000,
        }
    }

    #[test]
    fn batch_results_match_individual_runs() {
        // Each forked batch item must equal a cold `run` of the program
        // with that secret initializer — same cycles, same outputs.
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let keys = [0u64, 3, 0b1011];
        let v = sempe_core::json::parse(
            &execute(&batch_req(BackendSel::Baseline, &keys, false), &mut arena, &forks).unwrap(),
        )
        .unwrap();
        assert_eq!(v.get("items").and_then(Json::as_u64), Some(3));
        let results = v.get("results").and_then(Json::as_array).unwrap();
        for (key, item) in keys.iter().zip(results) {
            let patched = MODEXP.replace("0b1011", &key.to_string());
            let run = Request::Run {
                source: patched,
                backend: BackendSel::Baseline,
                mode: ExecMode::Detailed,
                max_cycles: 50_000_000,
            };
            let run_v =
                sempe_core::json::parse(&execute(&run, &mut arena, &forks).unwrap()).unwrap();
            assert_eq!(
                item.get("cycles").and_then(Json::as_u64),
                run_v.get("cycles").and_then(Json::as_u64),
                "key {key}: forked cycles must equal a cold run"
            );
            assert_eq!(
                item.get("outputs").and_then(Json::as_array),
                run_v.get("outputs").and_then(Json::as_array),
                "key {key}: forked outputs must equal a cold run"
            );
        }
        let forked = forks.hits() + forks.misses();
        assert!(forked >= 1, "batch must go through the fork cache");
    }

    #[test]
    fn batch_leak_check_flags_baseline_and_clears_sempe() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        // 0 and 15 take maximally different secret paths.
        let keys = [0u64, 15];
        let base = sempe_core::json::parse(
            &execute(&batch_req(BackendSel::Baseline, &keys, true), &mut arena, &forks).unwrap(),
        )
        .unwrap();
        let leak = base.get("leak").unwrap();
        assert_eq!(leak.get("all_clear").and_then(Json::as_bool), Some(false));

        let sempe = sempe_core::json::parse(
            &execute(&batch_req(BackendSel::Sempe, &keys, true), &mut arena, &forks).unwrap(),
        )
        .unwrap();
        let leak = sempe.get("leak").unwrap();
        assert_eq!(leak.get("all_clear").and_then(Json::as_bool), Some(true));
        let pairs = leak.get("pairs").and_then(Json::as_array).unwrap();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].get("cycles_equal").and_then(Json::as_bool), Some(true));
        assert_eq!(pairs[0].get("trace_identical").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn batch_streams_one_frame_per_item_without_changing_the_response() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let req = batch_req(BackendSel::Baseline, &[1, 2, 3], false);
        let plain = execute(&req, &mut arena, &forks).unwrap();
        let mut frames: Vec<String> = Vec::new();
        let mut emit = |j: Json| frames.push(j.encode());
        let mut sink = StreamSink::new(&mut emit);
        let streamed =
            execute_streamed(&req, &mut arena, &forks, None, &mut Span::begin(), Some(&mut sink))
                .unwrap();
        assert_eq!(plain, streamed, "the sink must not perturb the terminal response");
        assert_eq!(frames.len(), 3, "one frame per batch item: {frames:?}");
        assert!(frames[0].starts_with(r#"{"item":0,"cycles":"#), "{}", frames[0]);
        assert!(frames[2].starts_with(r#"{"item":2,"cycles":"#), "{}", frames[2]);
    }

    #[test]
    fn sweep_streams_one_frame_per_lane() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let req = Request::Sweep { source: MODEXP.to_string(), max_cycles: 50_000_000 };
        let plain = execute(&req, &mut arena, &forks).unwrap();
        let mut frames: Vec<String> = Vec::new();
        let mut emit = |j: Json| frames.push(j.encode());
        let mut sink = StreamSink::new(&mut emit);
        let streamed =
            execute_streamed(&req, &mut arena, &forks, None, &mut Span::begin(), Some(&mut sink))
                .unwrap();
        assert_eq!(plain, streamed);
        let lanes: Vec<&str> = frames
            .iter()
            .map(|f| {
                if f.starts_with(r#"{"lane":"baseline""#) {
                    "baseline"
                } else if f.starts_with(r#"{"lane":"sempe""#) {
                    "sempe"
                } else {
                    "cte"
                }
            })
            .collect();
        assert_eq!(lanes, vec!["baseline", "sempe", "cte"]);
    }

    #[test]
    fn batch_rejects_unknown_variables() {
        let mut arena = Arena::new();
        let forks = ForkCache::new(8);
        let req = Request::Batch {
            source: MODEXP.to_string(),
            backend: BackendSel::Baseline,
            mode: ExecMode::Detailed,
            inputs: vec![vec![("nope".to_string(), 1)]],
            leak_check: false,
            max_cycles: 1000,
        };
        assert_eq!(execute(&req, &mut arena, &forks).unwrap_err().code, ErrorCode::BadRequest);
    }

    #[test]
    fn batch_cache_keys_separate_inputs_and_flags() {
        let k = |keys: &[u64], leak| cache_key(&batch_req(BackendSel::Sempe, keys, leak)).unwrap();
        assert_eq!(k(&[1, 2], false), k(&[1, 2], false));
        assert_ne!(k(&[1, 2], false), k(&[2, 1], false), "input order is significant");
        assert_ne!(k(&[1, 2], false), k(&[1, 2], true), "leak_check changes the machine");
        assert_ne!(
            cache_key(&batch_req(BackendSel::Sempe, &[1], false)).unwrap(),
            cache_key(&batch_req(BackendSel::Baseline, &[1], false)).unwrap()
        );
    }

    #[test]
    fn attack_sweep_batch_cache_hits_are_byte_identical() {
        // The full worker path: compute once, cache the body, then serve
        // the same request from the cache — the hit must be the exact
        // bytes a cold execution produces, for every fork-server op.
        let cache = crate::cache::ResultCache::new(16);
        let forks = ForkCache::new(8);
        let requests = [
            attack_req("baseline"),
            Request::Sweep { source: MODEXP.to_string(), max_cycles: 50_000_000 },
            batch_req(BackendSel::Sempe, &[0, 15], true),
        ];
        for req in &requests {
            let key = cache_key(req).expect("compute requests have keys");
            let mut warm = Arena::new();
            let cold_body = execute(req, &mut warm, &forks).unwrap();
            cache.insert(key, std::sync::Arc::from(cold_body.as_str()));
            // A different worker (fresh arena, shared caches) recomputes
            // byte-identically, so hit and cold are indistinguishable.
            let mut other = Arena::new();
            let recomputed = execute(req, &mut other, &forks).unwrap();
            let hit = cache.get(&key).expect("inserted above");
            assert_eq!(&*hit, cold_body.as_str());
            assert_eq!(recomputed, cold_body);
        }
    }
}
