//! Poison-tolerant locking.
//!
//! A `Mutex` is poisoned when a thread panics while holding it. Every
//! structure the daemon guards this way (job queue, result cache,
//! connection registry) is a plain value store with no invariant that a
//! mid-update panic could break mid-way in a harmful fashion — the
//! worst case is one stale entry. Propagating the poison instead (the
//! `.expect()` the code used to do) converts one panicked worker into a
//! cascade that takes down every thread touching the lock, which is
//! exactly the wedge a long-running daemon must not have.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock, recovering from poisoning instead of propagating the panic.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait, recovering from poisoning instead of propagating.
pub fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(7u64));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock(&m), 7, "the daemon keeps serving from a poisoned lock");
    }
}
