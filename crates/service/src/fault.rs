//! Deterministic, seeded fault injection for the service stack.
//!
//! A [`FaultPlan`] is a pure description — per-site firing rates (in
//! per-mille) plus magnitudes (stall durations) and a seed. The running
//! daemon wraps it in a [`FaultInjector`], which rolls a seeded,
//! per-site counter-based hash at every labelled fault site:
//!
//! | site | where it bites |
//! |---|---|
//! | `accept_drop` | the connection is dropped right after `accept` |
//! | `read_stall` | the handler stalls before reading a request frame |
//! | `write_stall` | the response is written in two halves with a stall between |
//! | `write_trunc` | the response is truncated mid-frame and the socket closed |
//! | `panic_pre` | the worker panics at the `pre-execute` checkpoint (job in hand) |
//! | `panic_post` | the worker panics at the `post-execute` checkpoint (reply unsent) |
//! | `wedge` | the worker busy-waits as if the simulation wedged (honours the deadline) |
//! | `cache_fail` | the result-cache insert is dropped on the floor |
//! | `arena_corrupt` | the worker's arena is quarantined after the job (forces rebuild) |
//!
//! Decisions are deterministic given the seed: site `s` fires on its
//! `n`-th visit iff `mix(seed, s, n) % 1000 < rate(s)`. Which *request*
//! lands on the `n`-th visit still depends on thread interleaving — the
//! point is a reproducible fault *budget* per site, not a reproducible
//! schedule, and the chaos harness asserts convergence regardless of
//! interleaving.
//!
//! Plans parse from a compact `key=value,key=value` spec (the hidden
//! `sempe-serve --fault-plan` flag and `sempe-fuzz --service`):
//!
//! ```text
//! seed=7,accept_drop=30,read_stall=50,read_stall_ms=5,panic_pre=20
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sempe_core::json::Json;
use sempe_core::telemetry::{Counter, Registry};

/// Labelled fault sites, in counter/report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Drop a freshly accepted connection.
    AcceptDrop,
    /// Stall before reading a request frame.
    ReadStall,
    /// Stall mid-way through writing a response frame.
    WriteStall,
    /// Truncate a response frame and close the socket.
    WriteTrunc,
    /// Panic the worker before executing the job.
    PanicPre,
    /// Panic the worker after executing, before the reply is sent.
    PanicPost,
    /// Busy-wait in the worker as if the simulation wedged.
    Wedge,
    /// Drop the result-cache insert.
    CacheFail,
    /// Quarantine the worker's arena after the job.
    ArenaCorrupt,
    /// Drop every connection in the current accept burst.
    AcceptStorm,
    /// Fail poller registration of a fresh connection (crashes the event
    /// loop thread; exercises loop supervision/restart).
    RegisterFail,
    /// Lose a worker completion wake-up (the event loop's bounded-timeout
    /// fallback tick must still deliver the response).
    WakeLost,
}

impl FaultSite {
    /// How many sites exist (array dimension of rates and ledgers).
    pub const COUNT: usize = 12;

    /// Every site, in report order.
    pub const ALL: [FaultSite; FaultSite::COUNT] = [
        FaultSite::AcceptDrop,
        FaultSite::ReadStall,
        FaultSite::WriteStall,
        FaultSite::WriteTrunc,
        FaultSite::PanicPre,
        FaultSite::PanicPost,
        FaultSite::Wedge,
        FaultSite::CacheFail,
        FaultSite::ArenaCorrupt,
        FaultSite::AcceptStorm,
        FaultSite::RegisterFail,
        FaultSite::WakeLost,
    ];

    /// Stable name (spec keys and health report members).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            FaultSite::AcceptDrop => "accept_drop",
            FaultSite::ReadStall => "read_stall",
            FaultSite::WriteStall => "write_stall",
            FaultSite::WriteTrunc => "write_trunc",
            FaultSite::PanicPre => "panic_pre",
            FaultSite::PanicPost => "panic_post",
            FaultSite::Wedge => "wedge",
            FaultSite::CacheFail => "cache_fail",
            FaultSite::ArenaCorrupt => "arena_corrupt",
            FaultSite::AcceptStorm => "accept_storm",
            FaultSite::RegisterFail => "register_fail",
            FaultSite::WakeLost => "wake_lost",
        }
    }

    const fn index(self) -> usize {
        match self {
            FaultSite::AcceptDrop => 0,
            FaultSite::ReadStall => 1,
            FaultSite::WriteStall => 2,
            FaultSite::WriteTrunc => 3,
            FaultSite::PanicPre => 4,
            FaultSite::PanicPost => 5,
            FaultSite::Wedge => 6,
            FaultSite::CacheFail => 7,
            FaultSite::ArenaCorrupt => 8,
            FaultSite::AcceptStorm => 9,
            FaultSite::RegisterFail => 10,
            FaultSite::WakeLost => 11,
        }
    }
}

/// A pure fault-injection description: seed, per-site per-mille rates,
/// and stall magnitudes. The zero plan (the default) injects nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-site decision sequences.
    pub seed: u64,
    /// Per-mille firing rate per site (indexed by [`FaultSite::index`]).
    pub rates: [u16; FaultSite::COUNT],
    /// Stall duration for `read_stall`, milliseconds.
    pub read_stall_ms: u64,
    /// Stall duration for `write_stall`, milliseconds.
    pub write_stall_ms: u64,
    /// Busy-wait duration for `wedge`, milliseconds (clipped by the
    /// request deadline when one is armed).
    pub wedge_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 1,
            rates: [0; FaultSite::COUNT],
            read_stall_ms: 5,
            write_stall_ms: 5,
            wedge_ms: 50,
        }
    }
}

impl FaultPlan {
    /// Does any site have a non-zero rate?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// The firing rate of one site, per mille.
    #[must_use]
    pub fn rate(&self, site: FaultSite) -> u16 {
        self.rates[site.index()]
    }

    /// Set one site's firing rate (per mille, clamped to 1000).
    pub fn set_rate(&mut self, site: FaultSite, per_mille: u16) {
        self.rates[site.index()] = per_mille.min(1000);
    }

    /// Builder-style [`FaultPlan::set_rate`].
    #[must_use]
    pub fn with_rate(mut self, site: FaultSite, per_mille: u16) -> Self {
        self.set_rate(site, per_mille);
        self
    }

    /// Parse a compact spec: comma-separated `key=value` pairs where
    /// `key` is `seed`, a site name (value = per-mille rate 0..=1000),
    /// or `read_stall_ms` / `write_stall_ms` / `wedge_ms`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown keys or bad values.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("fault-plan entry `{pair}` is not key=value"))?;
            let parse_u64 =
                |v: &str| v.trim().parse::<u64>().map_err(|e| format!("fault-plan `{key}`: {e}"));
            match key.trim() {
                "seed" => plan.seed = parse_u64(value)?,
                "read_stall_ms" => plan.read_stall_ms = parse_u64(value)?,
                "write_stall_ms" => plan.write_stall_ms = parse_u64(value)?,
                "wedge_ms" => plan.wedge_ms = parse_u64(value)?,
                name => {
                    let site = FaultSite::ALL
                        .into_iter()
                        .find(|s| s.name() == name)
                        .ok_or_else(|| format!("unknown fault-plan key `{name}`"))?;
                    let rate = parse_u64(value)?;
                    if rate > 1000 {
                        return Err(format!("fault-plan `{name}` rate {rate} exceeds 1000‰"));
                    }
                    #[allow(clippy::cast_possible_truncation)] // just range-checked
                    plan.set_rate(site, rate as u16);
                }
            }
        }
        Ok(plan)
    }
}

/// SplitMix64 finalizer — the per-site decision hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The runtime half: a [`FaultPlan`] plus per-site visit and injection
/// counters. Shared by the accept loop, connection handlers, and
/// workers; all methods are lock-free.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    visits: [AtomicU64; FaultSite::COUNT],
    /// Per-site injection ledger. With [`FaultInjector::with_registry`]
    /// these are the registry's `faults_injected_total{site="…"}`
    /// counters, so the `health` fault report and the `metrics` op read
    /// the same atomics.
    injected: [Arc<Counter>; FaultSite::COUNT],
}

impl FaultInjector {
    /// Wrap a plan for runtime use with private (unregistered) counters.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            visits: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|_| Arc::new(Counter::new())),
        }
    }

    /// Wrap a plan whose injection ledger lives in `registry` as
    /// `faults_injected_total{site="<name>"}` — the single source of
    /// truth behind both the `health` fault report and the `metrics` op.
    #[must_use]
    pub fn with_registry(plan: FaultPlan, registry: &Registry) -> Self {
        FaultInjector {
            plan,
            visits: std::array::from_fn(|_| AtomicU64::new(0)),
            injected: std::array::from_fn(|i| {
                registry.counter(&format!(
                    "faults_injected_total{{site=\"{}\"}}",
                    FaultSite::ALL[i].name()
                ))
            }),
        }
    }

    /// The underlying plan.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Is any fault armed?
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.plan.is_active()
    }

    /// Visit `site`: roll the seeded decision and say whether the fault
    /// fires. Counts the visit either way and the injection when it
    /// fires.
    pub fn fire(&self, site: FaultSite) -> bool {
        let rate = self.plan.rate(site);
        if rate == 0 {
            return false;
        }
        let i = site.index();
        let n = self.visits[i].fetch_add(1, Ordering::Relaxed);
        let roll = mix(self.plan.seed ^ ((i as u64) << 56) ^ n) % 1000;
        let hit = roll < u64::from(rate);
        if hit {
            self.injected[i].inc();
        }
        hit
    }

    /// [`FaultInjector::fire`] for a stall site: returns the stall
    /// duration when the fault fires.
    pub fn stall(&self, site: FaultSite) -> Option<Duration> {
        if !self.fire(site) {
            return None;
        }
        let ms = match site {
            FaultSite::ReadStall => self.plan.read_stall_ms,
            FaultSite::WriteStall => self.plan.write_stall_ms,
            FaultSite::Wedge => self.plan.wedge_ms,
            _ => 0,
        };
        Some(Duration::from_millis(ms))
    }

    /// Panic at a labelled worker checkpoint when the site fires. The
    /// panic deliberately escapes the per-job `catch_unwind` — it models
    /// a worker-thread crash, and the supervisor must respawn the
    /// worker.
    pub fn checkpoint_panic(&self, site: FaultSite) {
        if self.fire(site) {
            panic!("fault-injected worker crash at checkpoint `{}`", site.name());
        }
    }

    /// Busy-wait as if the simulation wedged, honouring `deadline`:
    /// returns `true` when the wedge consumed the whole deadline (the
    /// caller should answer `E_DEADLINE`).
    pub fn wedge(&self, deadline: Option<Instant>) -> bool {
        let Some(span) = self.stall(FaultSite::Wedge) else { return false };
        let until = Instant::now() + span;
        loop {
            let now = Instant::now();
            if let Some(d) = deadline {
                if now >= d {
                    return true;
                }
            }
            if now >= until {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Times each site actually fired, in [`FaultSite::ALL`] order.
    #[must_use]
    pub fn injected(&self) -> [(FaultSite, u64); FaultSite::COUNT] {
        std::array::from_fn(|i| (FaultSite::ALL[i], self.injected[i].get()))
    }

    /// Total injections across all sites.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(|c| c.get()).sum()
    }

    /// The health-report fragment: activity flag, seed, per-site counts.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut counts = Json::obj();
        for (site, n) in self.injected() {
            counts.set(site.name(), n);
        }
        Json::obj()
            .with("active", self.is_active())
            .with("seed", self.plan.seed)
            .with("injected", counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::default());
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert!(!inj.fire(site));
            }
        }
        assert_eq!(inj.total_injected(), 0);
        assert!(!inj.is_active());
    }

    #[test]
    fn rates_are_respected_and_deterministic() {
        let plan = FaultPlan::default()
            .with_rate(FaultSite::AcceptDrop, 250)
            .with_rate(FaultSite::PanicPre, 1000);
        let run = || {
            let inj = FaultInjector::new(plan.clone());
            let drops = (0..1000).filter(|_| inj.fire(FaultSite::AcceptDrop)).count();
            let panics = (0..50).filter(|_| inj.fire(FaultSite::PanicPre)).count();
            (drops, panics)
        };
        let (drops, panics) = run();
        assert_eq!(panics, 50, "rate 1000‰ fires every visit");
        assert!((150..350).contains(&drops), "rate 250‰ fired {drops}/1000");
        assert_eq!((drops, panics), run(), "same seed, same decisions");
        let mut reseeded = plan;
        reseeded.seed = 999;
        let inj = FaultInjector::new(reseeded);
        let other = (0..1000).filter(|_| inj.fire(FaultSite::AcceptDrop)).count();
        assert!(other != drops || other > 0, "different seed may differ, still fires");
    }

    #[test]
    fn spec_round_trip_and_errors() {
        let plan = FaultPlan::parse(
            "seed=7, accept_drop=30, read_stall=50, read_stall_ms=9, panic_pre=20, wedge_ms=120",
        )
        .expect("spec parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rate(FaultSite::AcceptDrop), 30);
        assert_eq!(plan.rate(FaultSite::ReadStall), 50);
        assert_eq!(plan.read_stall_ms, 9);
        assert_eq!(plan.rate(FaultSite::PanicPre), 20);
        assert_eq!(plan.wedge_ms, 120);
        assert!(plan.is_active());
        assert!(FaultPlan::parse("warp=1").is_err());
        assert!(FaultPlan::parse("accept_drop").is_err());
        assert!(FaultPlan::parse("accept_drop=1001").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert_eq!(FaultPlan::parse("").expect("empty spec"), FaultPlan::default());
    }

    #[test]
    fn wedge_honours_the_deadline() {
        let mut plan = FaultPlan::default().with_rate(FaultSite::Wedge, 1000);
        plan.wedge_ms = 5_000;
        let inj = FaultInjector::new(plan);
        let start = Instant::now();
        let expired = inj.wedge(Some(Instant::now() + Duration::from_millis(30)));
        assert!(expired, "deadline must cut the wedge short");
        assert!(start.elapsed() < Duration::from_millis(2_000), "wedge must not run to 5s");
    }

    #[test]
    fn registry_backed_ledger_is_shared() {
        let reg = Registry::new();
        let inj = FaultInjector::with_registry(
            FaultPlan::default().with_rate(FaultSite::CacheFail, 1000),
            &reg,
        );
        assert!(inj.fire(FaultSite::CacheFail));
        assert_eq!(
            reg.counter("faults_injected_total{site=\"cache_fail\"}").get(),
            1,
            "health ledger and registry counter are the same atomic"
        );
        assert_eq!(inj.total_injected(), 1);
    }

    #[test]
    fn counters_report_per_site() {
        let inj = FaultInjector::new(FaultPlan::default().with_rate(FaultSite::CacheFail, 1000));
        assert!(inj.fire(FaultSite::CacheFail));
        assert!(!inj.fire(FaultSite::AcceptDrop));
        let injected = inj.injected();
        assert_eq!(injected[FaultSite::CacheFail.index()].1, 1);
        assert_eq!(injected[FaultSite::AcceptDrop.index()].1, 0);
        let j = inj.to_json();
        assert_eq!(j.get("active").and_then(Json::as_bool), Some(true));
        assert_eq!(
            j.get("injected").and_then(|i| i.get("cache_fail")).and_then(Json::as_u64),
            Some(1)
        );
    }
}
