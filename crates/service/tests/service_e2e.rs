//! End-to-end tests over a real TCP daemon: the attack API closes the
//! loop on `sempe_core::attack`, and the stress test pins the acceptance
//! bar — ≥ 100 `run` requests from ≥ 8 concurrent clients with zero
//! dropped or corrupted responses and byte-identical cache hits.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Mutex;

use sempe_core::json::{self, Json};
use sempe_service::{FaultPlan, Server, ServiceConfig};

const MODEXP: &str = r"
    secret key = 0b1011;
    var r = 1;
    var base = 7;
    var i = 0;
    var bit = 0;
    while (i < 4) bound 5 {
        bit = (key >> i) & 1;
        if secret (bit) { r = (r * base) % 1000003; }
        base = (base * base) % 1000003;
        i = i + 1;
    }
    output r;
";

const LEAKY_IF: &str = r"
    secret s = 1;
    var acc = 0;
    var i = 0;
    if secret (s) {
        while (i < 48) bound 49 { acc = acc + i * i; i = i + 1; }
    } else {
        acc = 7;
    }
    output acc;
";

fn start(workers: usize) -> Server {
    Server::start(&ServiceConfig { workers, ..ServiceConfig::default() }).expect("server starts")
}

/// One request/response exchange on a fresh connection.
fn roundtrip(server: &Server, line: &str) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    writeln!(stream, "{line}").expect("send");
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).expect("recv");
    assert!(resp.ends_with('\n'), "responses are newline-terminated");
    resp.trim_end().to_string()
}

fn attack_line(mode: &str, candidates: &str) -> String {
    format!(
        r#"{{"type":"attack","source":{},"mode":"{mode}","candidates":{candidates},"max_cycles":80000000}}"#,
        json::escape(MODEXP)
    )
}

#[test]
fn attack_api_recovers_baseline_secret_and_is_blind_under_sempe() {
    let server = start(2);

    let resp = roundtrip(&server, &attack_line("baseline", "[11,2,15]"));
    let v = json::parse(&resp).expect("attack response parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(v.get("secret_value").and_then(Json::as_u64), Some(11));
    let timing = v.get("timing").expect("timing section");
    assert_eq!(timing.get("can_distinguish").and_then(Json::as_bool), Some(true));
    assert_eq!(timing.get("guess").and_then(Json::as_str), Some("11"));
    assert_eq!(timing.get("recovered").and_then(Json::as_bool), Some(true));
    let branch = v.get("branch").expect("branch section");
    assert!(branch.get("leaking_branches").and_then(Json::as_u64).unwrap() >= 1);
    assert_eq!(branch.get("recovered").and_then(Json::as_bool), Some(true));
    assert_eq!(branch.get("recovered_key").and_then(Json::as_u64), Some(0b1011));

    let resp = roundtrip(&server, &attack_line("sempe", "[11,2,15]"));
    let v = json::parse(&resp).expect("attack response parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    let timing = v.get("timing").expect("timing section");
    assert_eq!(timing.get("can_distinguish").and_then(Json::as_bool), Some(false));
    assert_eq!(timing.get("recovered").and_then(Json::as_bool), Some(false));
    let branch = v.get("branch").expect("branch section");
    assert_eq!(branch.get("leaking_branches").and_then(Json::as_u64), Some(0));
    assert_eq!(branch.get("recovered").and_then(Json::as_bool), Some(false));
    assert_eq!(v.get("trace").unwrap().get("divergent_pairs").and_then(Json::as_u64), Some(0));

    server.shutdown();
    server.join();
}

#[test]
fn timing_attack_on_asymmetric_paths_matches_paper_claim() {
    let server = start(2);
    let line = format!(
        r#"{{"type":"attack","source":{},"candidates":[0,1],"max_cycles":80000000}}"#,
        json::escape(LEAKY_IF)
    );
    let v = json::parse(&roundtrip(&server, &line)).unwrap();
    // Default mode is baseline: the long/short paths differ in time.
    assert_eq!(v.get("mode").and_then(Json::as_str), Some("baseline"));
    assert_eq!(
        v.get("timing").unwrap().get("recovered").and_then(Json::as_bool),
        Some(true),
        "baseline timing must leak the branch direction"
    );
    server.shutdown();
    server.join();
}

#[test]
fn concurrent_clients_get_byte_identical_cached_responses() {
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 13; // 8 × 13 = 104 ≥ 100

    let server = start(4);

    // A small request pool: distinct `run` requests across backends and
    // sources, plus a `sweep` — enough uniques to exercise the cache,
    // few enough that most traffic is served from it.
    let mut pool: Vec<String> = Vec::new();
    for backend in ["baseline", "sempe", "cte"] {
        pool.push(format!(
            r#"{{"type":"run","source":{},"backend":"{backend}","max_cycles":80000000}}"#,
            json::escape(MODEXP)
        ));
        pool.push(format!(
            r#"{{"type":"run","source":{},"backend":"{backend}","max_cycles":80000000}}"#,
            json::escape(LEAKY_IF)
        ));
    }
    pool.push(format!(
        r#"{{"type":"sweep","source":{},"max_cycles":80000000}}"#,
        json::escape(MODEXP)
    ));

    // Cold pass: one response per unique request, sequentially, so the
    // stress pass below compares against known-cold bytes.
    let mut expected: HashMap<String, String> = HashMap::new();
    for req in &pool {
        let resp = roundtrip(&server, req);
        assert!(resp.starts_with(r#"{"ok":true"#), "cold run failed: {resp}");
        expected.insert(req.clone(), resp);
    }

    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (pool, expected, failures, server) = (&pool, &expected, &failures, &server);
            s.spawn(move || {
                // One persistent connection per client, requests pipelined
                // strictly request→response.
                let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                for i in 0..REQUESTS_PER_CLIENT {
                    let req = &pool[(client + i * CLIENTS) % pool.len()];
                    writeln!(stream, "{req}").expect("send");
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("recv");
                    let resp = resp.trim_end();
                    if resp != expected[req] {
                        failures.lock().unwrap().push(format!(
                            "client {client} request {i}: response diverged from cold bytes\n\
                             want: {}\n got: {resp}",
                            expected[req]
                        ));
                    }
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "{}", failures.join("\n---\n"));

    // The cache served the repeats, and it says so through `stats`.
    let stats = json::parse(&roundtrip(&server, r#"{"type":"stats"}"#)).unwrap();
    let jobs = stats.get("jobs_served").and_then(Json::as_u64).unwrap();
    assert!(jobs >= (CLIENTS * REQUESTS_PER_CLIENT) as u64, "served {jobs}");
    let cache = stats.get("cache").expect("cache section");
    let hits = cache.get("hits").and_then(Json::as_u64).unwrap();
    let misses = cache.get("misses").and_then(Json::as_u64).unwrap();
    assert!(hits >= 90, "expected overwhelming cache traffic, got {hits} hits / {misses} misses");
    assert!(cache.get("hit_rate").and_then(Json::as_f64).unwrap() > 0.5);

    server.shutdown();
    server.join();
}

#[test]
fn backpressure_rejects_rather_than_buffers() {
    // One worker, a one-slot queue, and a burst of slow-ish jobs: every
    // response must be a clean `ok` or an explicit E_BUSY rejection —
    // never a hang, a dropped connection, or a corrupted line.
    let server =
        Server::start(&ServiceConfig { workers: 1, queue_capacity: 1, ..ServiceConfig::default() })
            .expect("server starts");

    let line = format!(
        r#"{{"type":"run","source":{},"backend":"sempe","max_cycles":80000000}}"#,
        json::escape(LEAKY_IF)
    );
    let outcomes: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..8 {
            let (line, outcomes, server) = (&line, &outcomes, &server);
            s.spawn(move || {
                let resp = roundtrip(server, line);
                outcomes.lock().unwrap().push(resp);
            });
        }
    });
    let outcomes = outcomes.into_inner().unwrap();
    assert_eq!(outcomes.len(), 8);
    let ok = outcomes.iter().filter(|r| r.starts_with(r#"{"ok":true"#)).count();
    let busy = outcomes.iter().filter(|r| r.contains("\"E_BUSY\"")).count();
    assert_eq!(ok + busy, 8, "unexpected outcome mix: {outcomes:?}");
    assert!(ok >= 1, "at least one job must be served");

    let stats = json::parse(&roundtrip(&server, r#"{"type":"stats"}"#)).unwrap();
    assert_eq!(stats.get("rejected").and_then(Json::as_u64), Some((8 - ok) as u64));

    server.shutdown();
    server.join();
}

#[test]
fn batch_api_runs_paired_trials_on_the_fork_server() {
    let server = start(2);
    let line = format!(
        r#"{{"type":"batch","source":{},"backend":"sempe","inputs":[{{"key":0}},{{"key":15}},{{"key":11}},{{"key":11}}],"leak_check":true,"max_cycles":80000000}}"#,
        json::escape(MODEXP)
    );
    let v = json::parse(&roundtrip(&server, &line)).expect("batch response parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("items").and_then(Json::as_u64), Some(4));
    let results = v.get("results").and_then(Json::as_array).expect("results array");
    assert_eq!(results.len(), 4);
    // Items 2 and 3 share an input vector: identical results.
    assert_eq!(results[2].encode(), results[3].encode());
    // Under SeMPE, every secret pair is indistinguishable.
    let leak = v.get("leak").expect("leak section");
    assert_eq!(leak.get("all_clear").and_then(Json::as_bool), Some(true), "{v:?}");

    // The same pairs on the unprotected baseline leak.
    let line = line.replace(r#""backend":"sempe""#, r#""backend":"baseline""#);
    let v = json::parse(&roundtrip(&server, &line)).expect("batch response parses");
    let leak = v.get("leak").expect("leak section");
    assert_eq!(leak.get("all_clear").and_then(Json::as_bool), Some(false));

    // The fork server shows up in stats, and batch responses cache.
    let stats = json::parse(&roundtrip(&server, r#"{"type":"stats"}"#)).unwrap();
    let forks = stats.get("forks").expect("forks section");
    assert!(forks.get("checkpoints").and_then(Json::as_u64).unwrap() >= 2);

    server.shutdown();
    server.join();
}

#[test]
fn compile_and_error_paths_over_the_wire() {
    let server = start(2);
    let line =
        format!(r#"{{"type":"compile","source":{},"backend":"sempe"}}"#, json::escape(MODEXP));
    let v = json::parse(&roundtrip(&server, &line)).unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("taint_clean").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("secrets").and_then(Json::as_array).map(|a| a.len()), Some(1));

    let bad = roundtrip(&server, r#"{"type":"run","source":"var x = @;"}"#);
    assert!(bad.contains("\"E_WIR\""), "{bad}");
    assert!(bad.contains("parse error"), "WIR position info survives: {bad}");

    server.shutdown();
    server.join();
}

/// Regression for the shutdown truncation bug: `Server::join` used to
/// force-close every connection stream right after joining the workers,
/// cutting off handlers mid-write. The drain window must let an
/// in-flight response reach the client whole.
#[test]
fn shutdown_drains_in_flight_responses_without_truncation() {
    // Every response write stalls 300 ms mid-frame, so a shutdown
    // initiated while the write is in flight would truncate it without
    // the drain phase.
    let plan = FaultPlan::parse("seed=3,write_stall=1000,write_stall_ms=300").expect("plan");
    let server = Server::start(&ServiceConfig {
        workers: 1,
        drain_timeout_ms: 5_000,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let line = format!(
        r#"{{"type":"run","source":{},"backend":"sempe","max_cycles":80000000}}"#,
        json::escape(LEAKY_IF)
    );
    let client = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        writeln!(stream, "{line}").expect("send");
        let mut resp = String::new();
        BufReader::new(stream).read_line(&mut resp).expect("recv");
        resp
    });
    // Let the job get accepted and (most likely) into its stalled write,
    // then pull the rug: initiate shutdown and join the server.
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();
    server.join();

    let resp = client.join().expect("client thread");
    assert!(resp.ends_with('\n'), "response truncated by shutdown: {resp:?}");
    let v = json::parse(resp.trim_end()).expect("response parses whole");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
}

#[test]
fn garbage_after_a_valid_request_keeps_the_connection_alive() {
    let server = start(1);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(b"{\"type\":\"stats\"}\n\x01\x02 not json \x7f\n{\"type\":\"stats\"}\n")
        .expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("first");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    resp.clear();
    reader.read_line(&mut resp).expect("second");
    assert!(resp.contains("\"E_PARSE\""), "garbage gets a structured error: {resp}");
    resp.clear();
    reader.read_line(&mut resp).expect("third");
    assert!(resp.contains("\"ok\":true"), "connection survives the garbage: {resp}");
    server.shutdown();
    server.join();
}

#[test]
fn oversized_frame_mid_stream_gets_an_error_and_the_stream_recovers() {
    let server = start(1);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    // Valid request first: the connection is mid-stream, not fresh.
    writeln!(stream, r#"{{"type":"stats"}}"#).expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("stats");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // Now an oversized frame...
    let big = format!("{{\"type\":\"run\",\"source\":\"{}\"}}", "x".repeat(2 * 1024 * 1024));
    writeln!(stream, "{big}").expect("send oversized");
    resp.clear();
    reader.read_line(&mut resp).expect("error line");
    assert!(resp.contains("\"E_BAD_REQUEST\""), "{resp}");
    assert!(resp.contains("exceeds"), "{resp}");
    // ...and the very same connection keeps serving.
    writeln!(stream, r#"{{"type":"stats"}}"#).expect("send follow-up");
    resp.clear();
    reader.read_line(&mut resp).expect("follow-up");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    server.shutdown();
    server.join();
}

#[test]
fn unknown_op_with_deadline_and_id_gets_a_structured_error() {
    let server = start(1);
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    writeln!(stream, r#"{{"type":"explode","id":"x1","deadline_ms":1000}}"#).expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("error line");
    assert!(resp.starts_with(r#"{"id":"x1","#), "id echoes back: {resp}");
    assert!(resp.contains("\"E_BAD_REQUEST\""), "{resp}");
    assert!(resp.contains("unknown request type"), "{resp}");
    // The connection stays alive.
    writeln!(stream, r#"{{"type":"stats","id":"x2"}}"#).expect("send follow-up");
    resp.clear();
    reader.read_line(&mut resp).expect("follow-up");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    server.shutdown();
    server.join();
}

#[test]
fn expired_deadline_returns_e_deadline_with_partial_stats_over_the_wire() {
    let server = start(2);
    // A program long enough that a 1 ms budget expires mid-simulation.
    let long_loop = r"
        var i = 0;
        while (i < 1000000) bound 1000001 { i = i + 1; }
        output i;
    ";
    let line = format!(
        r#"{{"type":"run","source":{},"max_cycles":400000000,"deadline_ms":1,"id":7}}"#,
        json::escape(long_loop)
    );
    let started = std::time::Instant::now();
    let resp = roundtrip(&server, &line);
    let elapsed = started.elapsed();
    assert!(resp.starts_with(r#"{"id":7,"#), "numeric id echoes: {resp}");
    assert!(resp.contains("\"E_DEADLINE\""), "{resp}");
    assert!(resp.contains("\"partial\""), "partial progress reported: {resp}");
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "deadline must cut the run short, took {elapsed:?}"
    );
    // The worker survives the expired request and keeps serving.
    let resp = roundtrip(&server, r#"{"type":"health"}"#);
    assert!(resp.contains("\"ready\":true"), "{resp}");
    server.shutdown();
    server.join();
}
