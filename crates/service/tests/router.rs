//! Router integration tests over real TCP: digest affinity into the
//! shard cache tier, fan-out stream merging (dense per-id `seq`, shard
//! provenance, byte-identical terminals), surviving a `kill -9` of a
//! shard mid-batch with zero duplicated or lost trials, and the
//! circuit-breaker open → close lifecycle against a flapping shard.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use sempe_core::json::{self, Json};
use sempe_service::{Router, RouterConfig, Server, ServiceConfig};

/// A program whose runtime is controlled by the patchable `n` variable
/// (~250k loop iterations per second of wall time on the simulator).
const TUNABLE: &str = r"
    secret k = 1;
    var n = 1;
    var acc = 0;
    var i = 0;
    while (i < n) bound 2000001 { acc = acc + 1; i = i + 1; }
    output acc;
";

fn fast_config(shards: Vec<String>) -> RouterConfig {
    RouterConfig {
        shards,
        probe_interval_ms: 50,
        probe_timeout_ms: 2_000,
        connect_timeout_ms: 1_000,
        request_timeout_ms: 30_000,
        retry_base_ms: 20,
        breaker_cooloff_ms: 100,
        breaker_max_cooloff_ms: 500,
        batch_fanout_min: 4,
        ..RouterConfig::default()
    }
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read");
    assert!(n > 0, "unexpected EOF");
    assert!(line.ends_with('\n'), "responses are newline-terminated: {line}");
    line.trim_end().to_string()
}

fn hello(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    writeln!(stream, r#"{{"id":"hello","type":"hello","proto":2}}"#).expect("send hello");
    let resp = read_line(reader);
    let v = json::parse(&resp).expect("hello parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(v.get("streaming").and_then(Json::as_bool), Some(true), "{resp}");
}

fn roundtrip(addr: std::net::SocketAddr, line: &str) -> String {
    let (mut stream, mut reader) = connect(addr);
    writeln!(stream, "{line}").expect("send");
    read_line(&mut reader)
}

fn run_line(n: u64) -> String {
    let source = json::escape(&TUNABLE.replace("var n = 1;", &format!("var n = {n};")));
    format!(r#"{{"type":"run","source":{source},"backend":"sempe","max_cycles":80000000}}"#)
}

fn batch_line(id: &str, ns: &[u64]) -> String {
    let inputs: Vec<String> = ns.iter().map(|n| format!(r#"{{"n":{n}}}"#)).collect();
    format!(
        r#"{{"id":"{id}","type":"batch","source":{},"backend":"sempe","inputs":[{}],"max_cycles":80000000}}"#,
        json::escape(TUNABLE),
        inputs.join(",")
    )
}

/// Poll the router's `health` op until `shards_healthy` reaches `want`.
fn wait_healthy(addr: std::net::SocketAddr, want: u64, within: Duration) -> Json {
    let deadline = Instant::now() + within;
    loop {
        let resp = roundtrip(addr, r#"{"type":"health"}"#);
        let v = json::parse(&resp).expect("health parses");
        if v.get("shards_healthy").and_then(Json::as_u64) == Some(want) {
            return v;
        }
        assert!(Instant::now() < deadline, "router never reached {want} healthy shards: {resp}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shard_row(health: &Json, idx: usize) -> &Json {
    health.get("shards").and_then(Json::as_array).expect("shard table").get(idx).expect("row")
}

#[test]
fn digest_affinity_builds_a_sharded_cache_tier() {
    let shard_a = Server::start(&ServiceConfig::default()).expect("shard a");
    let shard_b = Server::start(&ServiceConfig::default()).expect("shard b");
    let cfg = fast_config(vec![shard_a.local_addr().to_string(), shard_b.local_addr().to_string()]);
    let router = Router::start(&cfg).expect("router");
    wait_healthy(router.local_addr(), 2, Duration::from_secs(10));

    // The same program twice through the router: rendezvous hashing
    // must land both runs on the same shard, so the second run is a
    // cache hit *there* and the other shard never sees the program.
    let line = run_line(7);
    let cold = roundtrip(router.local_addr(), &line);
    assert!(cold.contains(r#""ok":true"#), "{cold}");
    let warm = roundtrip(router.local_addr(), &line);
    assert_eq!(cold, warm, "routed cache hits stay byte-identical");

    let mut hits = 0u64;
    let mut owners = 0;
    for shard in [&shard_a, &shard_b] {
        let resp = roundtrip(shard.local_addr(), r#"{"type":"stats"}"#);
        let v = json::parse(&resp).expect("stats parses");
        let cache = v.get("cache").expect("cache section");
        let entries = cache.get("entries").and_then(Json::as_u64).unwrap_or(0);
        hits += cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
        if entries > 0 {
            owners += 1;
        }
    }
    assert_eq!(owners, 1, "exactly one shard owns the digest");
    assert!(hits >= 1, "the second run hit the owner's cache");

    router.shutdown();
    router.join();
    for shard in [shard_a, shard_b] {
        shard.shutdown();
        shard.join();
    }
}

#[test]
fn fanned_out_batch_merges_streams_and_terminals_byte_identically() {
    let shard_a = Server::start(&ServiceConfig::default()).expect("shard a");
    let shard_b = Server::start(&ServiceConfig::default()).expect("shard b");
    let cfg = fast_config(vec![shard_a.local_addr().to_string(), shard_b.local_addr().to_string()]);
    let router = Router::start(&cfg).expect("router");
    wait_healthy(router.local_addr(), 2, Duration::from_secs(10));

    const ITEMS: u64 = 12;
    let line = batch_line("b", &vec![3_000u64; ITEMS as usize]);

    let (mut stream, mut reader) = connect(router.local_addr());
    hello(&mut stream, &mut reader);
    writeln!(stream, "{line}").expect("send batch");

    let mut next_seq = 0u64;
    let mut items = HashSet::new();
    let mut shards_seen = HashSet::new();
    let routed_terminal = loop {
        let resp = read_line(&mut reader);
        let v = json::parse(&resp).expect("frame parses");
        assert!(resp.starts_with(r#"{"id":"b","#), "every line is id-tagged: {resp}");
        if v.get("partial").and_then(Json::as_bool) == Some(true) {
            assert_eq!(
                v.get("seq").and_then(Json::as_u64),
                Some(next_seq),
                "merged seq must be dense and monotonic: {resp}"
            );
            next_seq += 1;
            let item = v.get("item").and_then(Json::as_u64).expect("item-tagged");
            assert!(items.insert(item), "item {item} delivered twice: {resp}");
            shards_seen.insert(v.get("shard").and_then(Json::as_u64).expect("shard provenance"));
        } else {
            break resp;
        }
    };
    assert_eq!(next_seq, ITEMS, "one merged frame per trial");
    assert_eq!(items, (0..ITEMS).collect(), "every item exactly once");
    assert_eq!(shards_seen.len(), 2, "the batch actually fanned out across both shards");

    // The merged terminal must be byte-identical to the same batch
    // against a plain single server.
    let direct = Server::start(&ServiceConfig::default()).expect("direct server");
    let (mut dstream, mut dreader) = connect(direct.local_addr());
    hello(&mut dstream, &mut dreader);
    writeln!(dstream, "{line}").expect("send direct");
    let direct_terminal = loop {
        let resp = read_line(&mut dreader);
        let v = json::parse(&resp).expect("parses");
        if v.get("partial").and_then(Json::as_bool) != Some(true) {
            break resp;
        }
    };
    assert_eq!(routed_terminal, direct_terminal, "merged terminal is byte-identical");

    router.shutdown();
    router.join();
    for shard in [shard_a, shard_b, direct] {
        shard.shutdown();
        shard.join();
    }
}

/// A `sempe-serve` child process that is SIGKILLed on drop.
struct ShardProc {
    child: Child,
    addr: String,
}

impl ShardProc {
    fn spawn(tag: &str) -> ShardProc {
        let addr_file: PathBuf = std::env::temp_dir().join(format!(
            "sempe-router-test-{}-{tag}-{:?}.addr",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&addr_file);
        let child = Command::new(env!("CARGO_BIN_EXE_sempe-serve"))
            .args(["--addr", "127.0.0.1:0", "--workers", "2"])
            .arg("--addr-file")
            .arg(&addr_file)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn sempe-serve");
        let deadline = Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(addr) = std::fs::read_to_string(&addr_file) {
                if !addr.trim().is_empty() {
                    break addr.trim().to_string();
                }
            }
            assert!(Instant::now() < deadline, "shard never wrote its address");
            std::thread::sleep(Duration::from_millis(20));
        };
        let _ = std::fs::remove_file(&addr_file);
        ShardProc { child, addr }
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn killing_a_shard_mid_batch_loses_and_duplicates_nothing() {
    let mut shards = vec![ShardProc::spawn("a"), ShardProc::spawn("b")];
    let cfg = fast_config(shards.iter().map(|s| s.addr.clone()).collect());
    let router = Router::start(&cfg).expect("router");
    wait_healthy(router.local_addr(), 2, Duration::from_secs(20));

    const ITEMS: u64 = 1000;
    // Near-trivial trials: per-trial dispatch overhead (~ms) dominates,
    // so the stream runs for seconds — plenty of window to kill a shard
    // mid-chunk — without the test taking minutes.
    let ns: Vec<u64> = (0..ITEMS).map(|i| 1 + (i % 7)).collect();
    let line = batch_line("kb", &ns);

    let (mut stream, mut reader) = connect(router.local_addr());
    hello(&mut stream, &mut reader);
    writeln!(stream, "{line}").expect("send batch");

    // Read until the stream is well underway, then SIGKILL the shard
    // that produced the most recent frame — it is provably mid-chunk.
    let mut items = HashSet::new();
    let mut killed: Option<usize> = None;
    let routed_terminal = loop {
        let resp = read_line(&mut reader);
        let v = json::parse(&resp).expect("frame parses");
        if v.get("partial").and_then(Json::as_bool) == Some(true) {
            let item = v.get("item").and_then(Json::as_u64).expect("item-tagged");
            assert!(items.insert(item), "item {item} delivered twice: {resp}");
            if killed.is_none() && items.len() == 50 {
                let idx = v.get("shard").and_then(Json::as_u64).expect("shard provenance");
                let _ = shards[idx as usize].child.kill();
                let _ = shards[idx as usize].child.wait();
                killed = Some(idx as usize);
            }
        } else {
            break resp;
        }
    };
    let killed = killed.expect("a shard was killed mid-stream");
    assert_eq!(items, (0..ITEMS).collect(), "every trial exactly once despite the kill");
    let v = json::parse(&routed_terminal).expect("terminal parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{routed_terminal}");
    assert_eq!(v.get("items").and_then(Json::as_u64), Some(ITEMS), "{routed_terminal}");

    // The router visibly resubmitted work and marked the shard down.
    let resp = roundtrip(router.local_addr(), r#"{"type":"metrics","format":"prometheus"}"#);
    let text = json::parse(&resp)
        .ok()
        .and_then(|v| v.get("text").and_then(Json::as_str).map(str::to_string))
        .expect("prometheus text");
    let retries = text
        .lines()
        .find_map(|l| l.strip_prefix("router_retries_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    assert!(retries >= 1, "the killed chunk was retried: {text}");
    let health = wait_healthy(router.local_addr(), 1, Duration::from_secs(10));
    assert_eq!(
        shard_row(&health, killed).get("healthy").and_then(Json::as_bool),
        Some(false),
        "the killed shard is marked unhealthy"
    );

    // And the survivor-assembled terminal is byte-identical to a plain
    // single-server run of the same request.
    let direct = Server::start(&ServiceConfig::default()).expect("direct server");
    let (mut dstream, mut dreader) = connect(direct.local_addr());
    hello(&mut dstream, &mut dreader);
    writeln!(dstream, "{line}").expect("send direct");
    let direct_terminal = loop {
        let resp = read_line(&mut dreader);
        let v = json::parse(&resp).expect("parses");
        if v.get("partial").and_then(Json::as_bool) != Some(true) {
            break resp;
        }
    };
    assert_eq!(routed_terminal, direct_terminal, "terminal is byte-identical to a direct run");

    direct.shutdown();
    direct.join();
    router.shutdown();
    router.join();
    shards.clear();
}

#[test]
fn circuit_breaker_opens_on_a_dead_shard_and_closes_when_it_returns() {
    // Reserve a port, then leave it dead: every dial fails.
    let port = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").port()
    };
    let shard_addr = format!("127.0.0.1:{port}");
    let cfg = RouterConfig { breaker_threshold: 3, ..fast_config(vec![shard_addr.clone()]) };
    let router = Router::start(&cfg).expect("router");

    // Dial failures accumulate into the breaker until it trips open.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = roundtrip(router.local_addr(), r#"{"type":"health"}"#);
        let v = json::parse(&resp).expect("health parses");
        assert_eq!(v.get("ready").and_then(Json::as_bool), Some(false), "{resp}");
        let row = shard_row(&v, 0);
        let trips = row.get("trips").and_then(Json::as_u64).unwrap_or(0);
        if trips >= 1 && row.get("breaker").and_then(Json::as_str) == Some("open") {
            break;
        }
        assert!(Instant::now() < deadline, "breaker never opened: {resp}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The shard comes back on the same address: the next half-open
    // probe succeeds, the breaker closes, and the router goes ready.
    let shard = Server::start(&ServiceConfig { addr: shard_addr, ..ServiceConfig::default() })
        .expect("shard restarts on the reserved port");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = roundtrip(router.local_addr(), r#"{"type":"health"}"#);
        let v = json::parse(&resp).expect("health parses");
        let row = shard_row(&v, 0);
        if v.get("ready").and_then(Json::as_bool) == Some(true)
            && row.get("breaker").and_then(Json::as_str) == Some("closed")
        {
            break;
        }
        assert!(Instant::now() < deadline, "breaker never closed after recovery: {resp}");
        std::thread::sleep(Duration::from_millis(20));
    }

    router.shutdown();
    router.join();
    shard.shutdown();
    shard.join();
}
