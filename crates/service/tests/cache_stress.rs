//! Concurrency stress for the content-addressed result cache: racing
//! inserts at capacity, racing same-key inserts, and counter coherence.
//! The cache sits on every worker's hot path; a lost update is
//! tolerable, a panic, deadlock, or capacity breach is not.

use std::sync::Arc;

use sempe_service::cache::{CacheKey, ResultCache};

fn key(n: u64) -> CacheKey {
    CacheKey { op: "run", source_hash: n, backend: 1, mode: 1, config_digest: 7, params_digest: 9 }
}

#[test]
fn racing_inserts_at_capacity_stay_bounded_and_coherent() {
    const CAPACITY: usize = 8;
    const THREADS: u64 = 8;
    const KEYS: u64 = 32;
    const ROUNDS: u64 = 200;
    let cache = Arc::new(ResultCache::new(CAPACITY));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for round in 0..ROUNDS {
                    let n = (t * 31 + round * 17) % KEYS;
                    match cache.get(&key(n)) {
                        // A hit must carry exactly the value every racer
                        // inserts for that key — byte-identical bodies
                        // are the cache's core contract.
                        Some(body) => assert_eq!(&*body, format!("body-{n}").as_str()),
                        None => cache.insert(key(n), Arc::from(format!("body-{n}").as_str())),
                    }
                }
            });
        }
    });
    assert!(cache.len() <= CAPACITY, "eviction must hold under racing inserts");
    assert!(!cache.is_empty());
    let lookups = cache.hits() + cache.misses();
    assert_eq!(lookups, THREADS * ROUNDS, "every get counted exactly once");
    // Post-race, every cached entry still maps to its own body.
    for n in 0..KEYS {
        if let Some(body) = cache.get(&key(n)) {
            assert_eq!(&*body, format!("body-{n}").as_str());
        }
    }
}

#[test]
fn racing_same_key_inserts_keep_one_entry() {
    let cache = Arc::new(ResultCache::new(2));
    std::thread::scope(|s| {
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            s.spawn(move || {
                for _ in 0..500 {
                    cache.insert(key(1), Arc::from("same"));
                }
            });
        }
    });
    assert_eq!(cache.len(), 1, "same-key racers must collapse to one entry");
    assert_eq!(cache.get(&key(1)).as_deref(), Some("same"));
}
