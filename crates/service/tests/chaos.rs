//! Chaos soak: concurrent clients against a fault-plan-loaded server.
//!
//! The acceptance bar (ISSUE: robustness tentpole):
//!
//! * **zero hangs** — every exchange is bounded by socket timeouts and a
//!   retry budget, and the whole soak finishes;
//! * **zero lost accepted jobs** — every request converges to exactly
//!   one successful structured response (transient `E_BUSY`, crashed
//!   workers, truncated frames and dropped connections are retried);
//! * **byte-identical results** — each converged response equals the
//!   bytes a fault-free server produces for the same request.
//!
//! Knobs (all optional, for CI's fixed-seed matrix):
//!
//! | env | meaning |
//! |---|---|
//! | `SEMPE_CHAOS_PROFILE` | `panic` \| `io` \| `mixed` (default `mixed`) |
//! | `SEMPE_CHAOS_SEED` | fault-plan seed (default 1) |
//! | `SEMPE_CHAOS_REPORT` | write a JSON soak report to this path |

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use sempe_core::json::{self, Json};
use sempe_service::{FaultPlan, Server, ServiceConfig};

const MODEXP: &str = r"
    secret key = 0b1011;
    var r = 1;
    var base = 7;
    var i = 0;
    var bit = 0;
    while (i < 4) bound 5 {
        bit = (key >> i) & 1;
        if secret (bit) { r = (r * base) % 1000003; }
        base = (base * base) % 1000003;
        i = i + 1;
    }
    output r;
";

const LEAKY_IF: &str = r"
    secret s = 1;
    var acc = 0;
    var i = 0;
    if secret (s) {
        while (i < 48) bound 49 { acc = acc + i * i; i = i + 1; }
    } else {
        acc = 7;
    }
    output acc;
";

/// The soak's request pool: a light mix of every compute op, including
/// one heavy (`sweep`) request that exercises load shedding.
fn request_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for backend in ["baseline", "sempe"] {
        pool.push(format!(
            r#"{{"type":"run","source":{},"backend":"{backend}","max_cycles":80000000}}"#,
            json::escape(MODEXP)
        ));
    }
    pool.push(format!(
        r#"{{"type":"run","source":{},"backend":"sempe","max_cycles":80000000}}"#,
        json::escape(LEAKY_IF)
    ));
    pool.push(format!(r#"{{"type":"compile","source":{},"backend":"cte"}}"#, json::escape(MODEXP)));
    pool.push(format!(
        r#"{{"type":"sweep","source":{},"max_cycles":80000000}}"#,
        json::escape(LEAKY_IF)
    ));
    pool.push(format!(
        r#"{{"type":"batch","source":{},"backend":"sempe","inputs":[{{"key":0}},{{"key":11}}],"max_cycles":80000000}}"#,
        json::escape(MODEXP)
    ));
    pool
}

fn chaos_profile() -> String {
    std::env::var("SEMPE_CHAOS_PROFILE").unwrap_or_else(|_| "mixed".to_string())
}

fn chaos_seed() -> u64 {
    std::env::var("SEMPE_CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

fn profile_plan(profile: &str, seed: u64) -> FaultPlan {
    let spec = match profile {
        "panic" => {
            format!("seed={seed},panic_pre=250,panic_post=150,arena_corrupt=150,cache_fail=100")
        }
        "io" => format!(
            "seed={seed},accept_drop=200,accept_storm=60,read_stall=250,write_stall=250,\
             write_trunc=200,wake_lost=150,read_stall_ms=5,write_stall_ms=5"
        ),
        "mixed" => format!(
            "seed={seed},accept_drop=100,accept_storm=40,read_stall=100,write_stall=100,\
             write_trunc=100,wake_lost=100,panic_pre=100,panic_post=80,wedge=80,cache_fail=100,\
             arena_corrupt=80,read_stall_ms=3,write_stall_ms=3,wedge_ms=20"
        ),
        other => panic!("unknown SEMPE_CHAOS_PROFILE `{other}` (panic|io|mixed)"),
    };
    FaultPlan::parse(&spec).expect("profile spec parses")
}

/// One exchange on a fresh connection. `Err` is retryable: connect
/// refused/dropped, send failure, timeout, or a truncated frame.
fn one_exchange(addr: SocketAddr, line: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(20))).expect("read timeout");
    stream.set_write_timeout(Some(Duration::from_secs(20))).expect("write timeout");
    writeln!(stream, "{line}").map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).map_err(|e| format!("recv: {e}"))?;
    if resp.is_empty() {
        return Err("connection dropped before any response".to_string());
    }
    if !resp.ends_with('\n') {
        return Err(format!("truncated frame ({} bytes)", resp.len()));
    }
    Ok(resp.trim_end().to_string())
}

/// Retry one request until it converges to a non-`E_BUSY` structured
/// response. Returns `(response, attempts_used)`.
fn converge(addr: SocketAddr, line: &str, budget: u32) -> Result<(String, u32), String> {
    let mut last = String::new();
    for attempt in 1..=budget {
        match one_exchange(addr, line) {
            Ok(resp) if resp.contains("\"E_BUSY\"") => last = resp,
            Ok(resp) => return Ok((resp, attempt)),
            Err(why) => last = why,
        }
        std::thread::sleep(Duration::from_millis(u64::from(attempt.min(20))));
    }
    Err(format!("no convergence in {budget} attempts; last outcome: {last}"))
}

/// Fault-free golden bytes for every pool request.
fn golden(pool: &[String]) -> HashMap<String, String> {
    let server = Server::start(&ServiceConfig { workers: 2, ..ServiceConfig::default() })
        .expect("baseline server");
    let addr = server.local_addr();
    let mut expected = HashMap::new();
    for req in pool {
        let (resp, _) = converge(addr, req, 3).expect("fault-free server answers");
        assert!(resp.starts_with(r#"{"ok":true"#), "golden run failed: {resp}");
        expected.insert(req.clone(), resp);
    }
    server.shutdown();
    server.join();
    expected
}

#[test]
fn chaos_soak_converges_to_fault_free_bytes() {
    const CLIENTS: usize = 6;
    const PASSES: usize = 2;
    const RETRY_BUDGET: u32 = 200;

    let profile = chaos_profile();
    let seed = chaos_seed();
    let pool = request_pool();
    let expected = golden(&pool);

    let server = Server::start(&ServiceConfig {
        workers: 3,
        queue_capacity: 32,
        restart_budget: 100_000,
        backoff_base_ms: 1,
        frame_timeout_ms: 5_000,
        drain_timeout_ms: 5_000,
        fault_plan: Some(profile_plan(&profile, seed)),
        ..ServiceConfig::default()
    })
    .expect("chaos server");
    let addr = server.local_addr();

    let started = Instant::now();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let attempts_total: Mutex<u64> = Mutex::new(0);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let (pool, expected, failures, attempts_total) =
                (&pool, &expected, &failures, &attempts_total);
            s.spawn(move || {
                for pass in 0..PASSES {
                    for i in 0..pool.len() {
                        // Stagger which request each client starts on so
                        // the fault sites see interleaved traffic.
                        let req = &pool[(client + i) % pool.len()];
                        match converge(addr, req, RETRY_BUDGET) {
                            Ok((resp, attempts)) => {
                                *attempts_total.lock().unwrap() += u64::from(attempts);
                                if resp != expected[req] {
                                    failures.lock().unwrap().push(format!(
                                        "client {client} pass {pass} req {i}: bytes diverged\n\
                                         want: {}\n got: {resp}",
                                        expected[req]
                                    ));
                                }
                            }
                            Err(why) => failures
                                .lock()
                                .unwrap()
                                .push(format!("client {client} pass {pass} req {i}: {why}")),
                        }
                    }
                }
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "soak failures:\n{}", failures.join("\n---\n"));

    // Pull the health/fault ledger for the report before draining.
    let (health, _) = converge(addr, r#"{"type":"health"}"#, 50).expect("health converges");
    let health_json = json::parse(&health).expect("health parses");
    server.shutdown();
    server.join();

    let exchanges = (CLIENTS * PASSES * pool.len()) as u64;
    let attempts = *attempts_total.lock().unwrap();
    if let Ok(path) = std::env::var("SEMPE_CHAOS_REPORT") {
        let report = Json::obj()
            .with("profile", profile.as_str())
            .with("seed", seed)
            .with("clients", CLIENTS)
            .with("passes", PASSES)
            .with("unique_requests", pool.len())
            .with("exchanges", exchanges)
            .with("attempts", attempts)
            .with("elapsed_ms", u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX))
            .with("health", health_json.clone())
            .encode();
        std::fs::write(&path, report + "\n").expect("write chaos report");
    }
    assert!(attempts >= exchanges, "attempt accounting is broken");
    // The plan actually bit: a chaos run that injected nothing proves
    // nothing. Every profile has multi-percent rates over hundreds of
    // site visits, so zero injections means mis-wiring.
    let faults = health_json.get("faults").expect("faults section");
    let injected = faults.get("injected").expect("injected counts");
    let total: u64 = [
        "accept_drop",
        "accept_storm",
        "read_stall",
        "write_stall",
        "write_trunc",
        "wake_lost",
        "panic_pre",
        "panic_post",
        "wedge",
        "cache_fail",
        "arena_corrupt",
    ]
    .iter()
    .filter_map(|k| injected.get(k).and_then(Json::as_u64))
    .sum();
    assert!(total > 0, "fault plan never fired — injector not wired? {health}");
}

/// The wedged-simulation acceptance criterion: a request whose worker
/// wedges must come back as `E_DEADLINE` close to its `deadline_ms`,
/// and the pool must stay healthy (no thread stuck in the wedge).
#[test]
fn wedged_requests_meet_their_deadline_and_the_pool_recovers() {
    let plan = FaultPlan::parse("seed=11,wedge=1000,wedge_ms=30000").expect("plan");
    let server = Server::start(&ServiceConfig {
        workers: 2,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.local_addr();

    let line = format!(
        r#"{{"type":"run","source":{},"backend":"sempe","max_cycles":80000000,"deadline_ms":150}}"#,
        json::escape(LEAKY_IF)
    );
    let started = Instant::now();
    let resp = one_exchange(addr, &line).expect("wedged request still answers");
    let elapsed = started.elapsed();
    assert!(resp.contains("\"E_DEADLINE\""), "{resp}");
    assert!(
        elapsed < Duration::from_millis(2_000),
        "E_DEADLINE must arrive near the 150 ms budget, took {elapsed:?}"
    );

    // Both workers must be alive and ready — the wedge honours the
    // deadline instead of pinning the thread for its full 30 s span.
    let health = one_exchange(addr, r#"{"type":"health"}"#).expect("health");
    let v = json::parse(&health).expect("health parses");
    assert_eq!(v.get("ready").and_then(Json::as_bool), Some(true), "{health}");
    let workers = v.get("workers").expect("workers");
    assert_eq!(workers.get("alive").and_then(Json::as_u64), Some(2), "{health}");
    assert!(v.get("deadlines_expired").and_then(Json::as_u64).unwrap() >= 1, "{health}");

    server.shutdown();
    server.join();
}

/// Worker crashes are supervised: with panics injected at the
/// pre-execute checkpoint, every job still converges (retries land on
/// respawned workers) and the health report shows the restarts.
#[test]
fn crashed_workers_are_respawned_and_jobs_converge() {
    let plan = FaultPlan::parse("seed=9,panic_pre=400").expect("plan");
    let server = Server::start(&ServiceConfig {
        workers: 2,
        restart_budget: 100_000,
        backoff_base_ms: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.local_addr();

    let line = format!(
        r#"{{"type":"run","source":{},"backend":"baseline","max_cycles":80000000}}"#,
        json::escape(MODEXP)
    );
    let golden = {
        let clean = Server::start(&ServiceConfig { workers: 1, ..ServiceConfig::default() })
            .expect("baseline server");
        let (resp, _) = converge(clean.local_addr(), &line, 3).expect("clean run");
        clean.shutdown();
        clean.join();
        resp
    };

    for _ in 0..20 {
        let (resp, _) = converge(addr, &line, 100).expect("job converges despite crashes");
        assert_eq!(resp, golden, "post-crash retry must be byte-identical");
    }

    let (health, _) = converge(addr, r#"{"type":"health"}"#, 50).expect("health");
    let v = json::parse(&health).expect("health parses");
    let workers = v.get("workers").expect("workers");
    let restarts = workers.get("restarts").and_then(Json::as_u64).unwrap();
    assert!(restarts >= 1, "panic_pre at 400‰ over 20+ jobs must crash a worker: {health}");
    assert!(workers.get("alive").and_then(Json::as_u64).unwrap() >= 1, "{health}");
    assert_eq!(v.get("ready").and_then(Json::as_bool), Some(true), "{health}");

    server.shutdown();
    server.join();
}

/// The multiplexed (v2) path under its own fault sites: `register_fail`
/// panics the event loop at connection registration (its supervision
/// wrapper respawns it with a fresh poller), `accept_storm` drops whole
/// accept bursts, and `wake_lost` swallows worker→loop wakeups (the
/// loop's fallback tick must recover them). Pipelined batches of v2
/// requests must still all converge, byte-identical modulo ids.
#[test]
fn multiplexed_pipeline_survives_loop_crashes() {
    const ROUNDS: usize = 30;
    const WINDOW: usize = 4;
    const RETRY_BUDGET: u32 = 60;

    let plan =
        FaultPlan::parse("seed=5,register_fail=120,accept_storm=80,wake_lost=250").expect("plan");
    let server = Server::start(&ServiceConfig {
        workers: 2,
        restart_budget: 100_000,
        backoff_base_ms: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    })
    .expect("server");
    let addr = server.local_addr();

    // One pipelined round: fresh connection, hello upgrade, WINDOW
    // stats requests in flight at once, read until every id has its
    // terminal response. Any transport failure retries the whole round
    // on a new connection — ids stay valid there (fresh replay window).
    let run_round = |round: usize| -> Result<(), String> {
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
        stream.set_write_timeout(Some(Duration::from_secs(10))).expect("write timeout");
        writeln!(stream, r#"{{"id":"hello","type":"hello","proto":2}}"#)
            .map_err(|e| format!("send hello: {e}"))?;
        let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("hello recv: {e}"))?;
        if !line.contains(r#""ok":true"#) || !line.contains(r#""proto":2"#) {
            return Err(format!("hello rejected: {line}"));
        }
        let mut awaiting: Vec<String> = (0..WINDOW).map(|k| format!("r{round}-{k}")).collect();
        for id in &awaiting {
            writeln!(stream, r#"{{"id":"{id}","type":"stats"}}"#)
                .map_err(|e| format!("send: {e}"))?;
        }
        while !awaiting.is_empty() {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
            if n == 0 {
                return Err("connection dropped mid-round".to_string());
            }
            if !line.ends_with('\n') {
                return Err("truncated frame".to_string());
            }
            let v = json::parse(line.trim_end()).map_err(|e| format!("bad frame: {e}"))?;
            if v.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(format!("structured error: {}", line.trim_end()));
            }
            let id = v.get("id").and_then(Json::as_str).unwrap_or_default().to_string();
            awaiting.retain(|a| a != &id);
        }
        Ok(())
    };

    for round in 0..ROUNDS {
        let mut last = String::new();
        let mut converged = false;
        for attempt in 1..=RETRY_BUDGET {
            match run_round(round) {
                Ok(()) => {
                    converged = true;
                    break;
                }
                Err(why) => last = why,
            }
            std::thread::sleep(Duration::from_millis(u64::from(attempt.min(20))));
        }
        assert!(converged, "round {round} never converged; last outcome: {last}");
    }

    // The new sites must actually have fired, and the loop must have
    // been respawned at least once — scraped from the same registry the
    // `metrics` op serves.
    let (resp, _) = converge(addr, r#"{"type":"metrics"}"#, 50).expect("metrics converges");
    let v = json::parse(&resp).expect("metrics parses");
    let snap = v.get("metrics").expect("snapshot");
    let counter = |name: &str| {
        snap.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
    };
    let injected: u64 = ["accept_storm", "register_fail", "wake_lost"]
        .iter()
        .map(|site| counter(&format!("faults_injected_total{{site=\"{site}\"}}")))
        .sum();
    assert!(injected > 0, "multiplexed-path fault sites never fired: {resp}");
    assert!(
        counter("loop_restarts_total") >= 1,
        "register_fail at 120‰ over {ROUNDS}+ connections must crash the loop: {resp}"
    );

    server.shutdown();
    server.join();
}
