//! The `metrics` op under concurrency: N clients hammering mixed ops
//! while a scraper polls, histogram bucket monotonicity, snapshot
//! self-consistency (aggregate phase time ≤ aggregate wall time),
//! cache hits staying byte-identical *and* counted, and the `--trace-log`
//! JSONL stream end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

use sempe_core::json::{self, Json};
use sempe_service::{Server, ServiceConfig};

const MODEXP: &str = r"
    secret key = 0b1011;
    var r = 1;
    var base = 7;
    var i = 0;
    var bit = 0;
    while (i < 4) bound 5 {
        bit = (key >> i) & 1;
        if secret (bit) { r = (r * base) % 1000003; }
        base = (base * base) % 1000003;
        i = i + 1;
    }
    output r;
";

fn roundtrip(server: &Server, line: &str) -> String {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    writeln!(stream, "{line}").expect("send");
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).expect("recv");
    assert!(resp.ends_with('\n'), "responses are newline-terminated");
    resp.trim_end().to_string()
}

fn run_line(max_cycles: u64) -> String {
    format!(
        r#"{{"type":"run","source":{},"backend":"sempe","max_cycles":{max_cycles}}}"#,
        json::escape(MODEXP)
    )
}

fn scrape(server: &Server) -> Json {
    let resp = roundtrip(server, r#"{"type":"metrics"}"#);
    let v = json::parse(&resp).expect("metrics response parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(v.get("type").and_then(Json::as_str), Some("metrics"));
    v.get("metrics").expect("metrics member").clone()
}

/// Every histogram in a snapshot must have strictly increasing bucket
/// bounds, non-decreasing cumulative counts, and a final `+Inf` bucket
/// that equals the histogram's total count.
fn assert_histograms_consistent(snapshot: &Json) {
    let Some(Json::Obj(hists)) = snapshot.get("histograms") else {
        panic!("snapshot has a histograms section")
    };
    for (name, h) in hists {
        let count = h.get("count").and_then(Json::as_u64).expect("count");
        let sum = h.get("sum").and_then(Json::as_u64);
        assert!(sum.is_some(), "{name}: sum present");
        let buckets = h.get("buckets").and_then(Json::as_array).expect("buckets");
        assert!(!buckets.is_empty(), "{name}: at least the +Inf bucket");
        let mut last_le = None;
        let mut last_cum = 0u64;
        for b in buckets {
            let cum = b.get("count").and_then(Json::as_u64).expect("cumulative count");
            assert!(cum >= last_cum, "{name}: cumulative counts are monotone");
            last_cum = cum;
            match b.get("le").and_then(Json::as_u64) {
                Some(le) => {
                    if let Some(prev) = last_le {
                        assert!(le > prev, "{name}: bucket bounds increase");
                    }
                    last_le = Some(le);
                }
                None => {
                    assert_eq!(
                        b.get("le").and_then(Json::as_str),
                        Some("+Inf"),
                        "{name}: non-numeric bound must be +Inf"
                    );
                }
            }
        }
        assert_eq!(last_cum, count, "{name}: the final cumulative bucket is the total");
    }
}

fn counter(snapshot: &Json, name: &str) -> u64 {
    snapshot.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

fn hist_field(snapshot: &Json, name: &str, field: &str) -> u64 {
    snapshot
        .get("histograms")
        .and_then(|h| h.get(name))
        .and_then(|h| h.get(field))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn concurrent_hammer_with_a_polling_scraper() {
    let server = Server::start(&ServiceConfig { workers: 4, ..ServiceConfig::default() })
        .expect("server starts");

    const CLIENTS: usize = 6;
    const SHARED_FUEL: u64 = 50_000_000;
    std::thread::scope(|s| {
        // A scraper polling `metrics` while the clients hammer: every
        // snapshot it sees must already be internally consistent.
        let scraper = s.spawn(|| {
            for _ in 0..20 {
                let snap = scrape(&server);
                assert_histograms_consistent(&snap);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        });
        for t in 0..CLIENTS {
            let server = &server;
            s.spawn(move || {
                // Two distinct-keyed runs (misses), two shared runs
                // (first wins the miss, the rest are hits), plus
                // control-plane ops mixed in.
                for i in 0..2u64 {
                    let fuel = SHARED_FUEL + 1 + (t as u64) * 16 + i;
                    let resp = roundtrip(server, &run_line(fuel));
                    assert!(resp.contains("\"ok\":true"), "{resp}");
                }
                for _ in 0..2 {
                    let resp = roundtrip(server, &run_line(SHARED_FUEL));
                    assert!(resp.contains("\"ok\":true"), "{resp}");
                }
                let _ = roundtrip(server, r#"{"type":"stats"}"#);
                let _ = roundtrip(server, r#"{"type":"health"}"#);
            });
        }
        scraper.join().expect("scraper lives");
    });

    let snap = scrape(&server);
    assert_histograms_consistent(&snap);

    // Request accounting: every compute submission and the control ops.
    let runs = CLIENTS as u64 * 4;
    assert_eq!(counter(&snap, "requests_total{op=\"run\"}"), runs);
    assert!(counter(&snap, "requests_total{op=\"stats\"}") >= CLIENTS as u64);
    assert!(counter(&snap, "requests_total{op=\"metrics\"}") >= 20);
    assert_eq!(counter(&snap, "jobs_served_total"), runs);
    assert_eq!(hist_field(&snap, "request_latency_us{op=\"run\"}", "count"), runs);

    // The shared request: concurrent first attempts may race each other
    // to the miss, but every thread's *second* shared run is a
    // guaranteed hit (its own first insert completed).
    let hits = counter(&snap, "cache_hits_total");
    let misses = counter(&snap, "cache_misses_total");
    assert_eq!(hits + misses, runs, "every run consulted the cache");
    assert!(hits >= CLIENTS as u64, "second shared runs always hit: {hits}");

    // Host attribution flowed in from the simulator: at least every
    // cache miss ran the pipeline once.
    assert!(counter(&snap, "sim_runs_total") >= misses);

    // Self-consistency: aggregate in-job phase time can never exceed
    // aggregate request wall time. Each request truncates each of its
    // ≤6 phases and its total to whole µs, so allow one µs per sample.
    let phases = ["queue_wait", "compile", "checkpoint_restore", "simulate", "encode"];
    let mut phase_sum = 0u64;
    let mut phase_count = 0u64;
    for p in &phases {
        let name = format!("phase_latency_us{{phase=\"{p}\"}}");
        phase_sum += hist_field(&snap, &name, "sum");
        phase_count += hist_field(&snap, &name, "count");
    }
    let mut wall_sum = 0u64;
    for op in ["run", "stats", "health", "metrics"] {
        wall_sum += hist_field(&snap, &format!("request_latency_us{{op=\"{op}\"}}"), "sum");
    }
    assert!(
        phase_sum <= wall_sum + phase_count,
        "phase time ({phase_sum}µs over {phase_count} samples) must fit in wall time ({wall_sum}µs)"
    );

    // The Prometheus rendering carries the same series.
    let resp = roundtrip(&server, r#"{"type":"metrics","format":"prometheus"}"#);
    let v = json::parse(&resp).expect("prometheus response parses");
    let text = v.get("text").and_then(Json::as_str).expect("text member");
    assert!(text.contains("jobs_served_total"), "{text}");
    assert!(text.contains("# TYPE"), "{text}");
    assert!(text.contains("_bucket{"), "{text}");
    assert!(text.contains("le=\"+Inf\""), "{text}");

    server.shutdown();
    server.join();
}

#[test]
fn health_reports_queue_age_and_per_worker_depth() {
    let server = Server::start(&ServiceConfig { workers: 1, ..ServiceConfig::default() })
        .expect("server starts");

    // One slow run occupies the only worker; two more sit in the queue.
    let slow = r"
        secret k = 1;
        var n = 20000;
        var acc = 0;
        var i = 0;
        while (i < n) bound 2000001 { acc = acc + 1; i = i + 1; }
        output acc;
    ";
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    writeln!(stream, r#"{{"id":"hello","type":"hello","proto":2}}"#).expect("hello");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("hello ack");
    for i in 0..3 {
        writeln!(
            stream,
            r#"{{"id":"q{i}","type":"run","source":{},"backend":"sempe","max_cycles":{}}}"#,
            json::escape(slow),
            80_000_000 + i, // distinct fuel: three distinct jobs, no cache hit
        )
        .expect("send run");
    }
    std::thread::sleep(std::time::Duration::from_millis(150));

    let resp = roundtrip(&server, r#"{"type":"health"}"#);
    let v = json::parse(&resp).expect("health parses");
    let queue = v.get("queue").expect("queue section");
    assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(2), "{resp}");
    assert_eq!(queue.get("depth_per_worker").and_then(Json::as_u64), Some(2), "{resp}");
    let oldest = queue.get("oldest_ms").and_then(Json::as_u64).expect("oldest_ms member");
    assert!(
        (100..60_000).contains(&oldest),
        "front job queued ~150ms ago must show its age: {resp}"
    );

    // Drain, then the pressure signals must return to zero.
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("run completes");
        assert!(line.contains(r#""ok":true"#), "{line}");
    }
    let resp = roundtrip(&server, r#"{"type":"health"}"#);
    let v = json::parse(&resp).expect("health parses");
    let queue = v.get("queue").expect("queue section");
    assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(0), "{resp}");
    assert_eq!(queue.get("oldest_ms").and_then(Json::as_u64), Some(0), "{resp}");
    assert_eq!(queue.get("depth_per_worker").and_then(Json::as_u64), Some(0), "{resp}");

    server.shutdown();
    server.join();
}

#[test]
fn byte_identical_cache_hits_still_count_as_hits() {
    let server = Server::start(&ServiceConfig { workers: 1, ..ServiceConfig::default() })
        .expect("server starts");
    let line = run_line(60_000_000);
    let cold = roundtrip(&server, &line);
    let before = scrape(&server);
    let warm = roundtrip(&server, &line);
    let after = scrape(&server);
    assert_eq!(cold, warm, "cache hits are byte-identical to cold responses");
    assert_eq!(
        counter(&after, "cache_hits_total"),
        counter(&before, "cache_hits_total") + 1,
        "the identical response was still counted as a hit"
    );
    server.shutdown();
    server.join();
}

#[test]
fn tiered_runs_export_fast_forward_attribution() {
    let server = Server::start(&ServiceConfig { workers: 1, ..ServiceConfig::default() })
        .expect("server starts");
    // Detailed traffic first: no fast-forward attribution may leak in.
    let resp = roundtrip(&server, &run_line(80_000_000));
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let before = scrape(&server);
    assert_eq!(counter(&before, "ff_instructions_total"), 0);
    assert_eq!(hist_field(&before, "sim_host_us{phase=\"ff\"}", "count"), 0);
    // A tiered run of the same program fast-forwards the public modexp
    // loop; the instructions it retires functionally and the host time
    // spent fast-forwarding / warming must land in the registry.
    let tiered = format!(
        r#"{{"type":"run","source":{},"backend":"sempe","mode":"tiered","max_cycles":80000000}}"#,
        json::escape(MODEXP)
    );
    let resp = roundtrip(&server, &tiered);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"mode\":\"tiered\""), "{resp}");
    let after = scrape(&server);
    assert!(counter(&after, "ff_instructions_total") > 0, "tiered run billed no ff instructions");
    assert_eq!(hist_field(&after, "sim_host_us{phase=\"ff\"}", "count"), 1);
    assert_eq!(hist_field(&after, "sim_host_us{phase=\"warm\"}", "count"), 1);
    assert_histograms_consistent(&after);
    server.shutdown();
    server.join();
}

#[test]
fn trace_log_streams_structured_jsonl_events() {
    let path: PathBuf = std::env::temp_dir().join(format!(
        "sempe-trace-test-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let server = Server::start(&ServiceConfig {
        workers: 2,
        trace_log_path: Some(path.clone()),
        trace_sample: 1,
        ..ServiceConfig::default()
    })
    .expect("server starts");

    let line = run_line(70_000_000);
    let cold = roundtrip(&server, &line);
    assert!(cold.contains("\"ok\":true"), "{cold}");
    let warm = roundtrip(&server, &line);
    assert_eq!(cold, warm);
    let bad = roundtrip(
        &server,
        r#"{"type":"run","source":"var x = @;","backend":"sempe","id":"trace-me"}"#,
    );
    assert!(bad.contains("E_WIR"), "{bad}");

    // Dropping the server flushes and joins the trace writer thread.
    server.shutdown();
    server.join();

    let body = std::fs::read_to_string(&path).expect("trace log exists");
    let events: Vec<Json> =
        body.lines().map(|l| json::parse(l).expect("every trace line is valid JSON")).collect();
    assert_eq!(events.len(), 3, "sample=1 logs every completed job:\n{body}");
    for e in &events {
        assert_eq!(e.get("op").and_then(Json::as_str), Some("run"));
        assert!(e.get("t_us").and_then(Json::as_u64).is_some());
        assert!(e.get("total_us").and_then(Json::as_u64).is_some());
        assert!(e.get("queue_us").and_then(Json::as_u64).is_some());
        assert!(e.get("phases").is_some());
    }
    assert!(
        events.iter().any(|e| e.get("cached").and_then(Json::as_bool) == Some(true)),
        "the warm run is marked cached:\n{body}"
    );
    assert!(
        events.iter().any(|e| e.get("ok").and_then(Json::as_bool) == Some(false)
            && e.get("code").and_then(Json::as_str) == Some("E_WIR")
            && e.get("id").and_then(Json::as_str) == Some("trace-me")),
        "the failed run carries its error code and request id:\n{body}"
    );
    let _ = std::fs::remove_file(&path);
}
