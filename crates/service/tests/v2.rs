//! Protocol-v2 integration tests over a real TCP daemon: `hello`
//! negotiation, pipelined out-of-order responses matched by id,
//! streamed per-trial frames (ordering, monotonic `seq`, interleaving
//! across concurrent streams on one connection), torn-write detection,
//! and byte-level framing robustness.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sempe_core::json::{self, Json};
use sempe_service::{FaultPlan, Server, ServiceConfig};

/// A program whose runtime is controlled by the patchable `n` variable
/// (~250k loop iterations per second of wall time on the simulator).
const TUNABLE: &str = r"
    secret k = 1;
    var n = 1;
    var acc = 0;
    var i = 0;
    while (i < n) bound 2000001 { acc = acc + 1; i = i + 1; }
    output acc;
";

fn start(workers: usize) -> Server {
    Server::start(&ServiceConfig { workers, ..ServiceConfig::default() }).expect("server starts")
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read");
    assert!(n > 0, "unexpected EOF");
    assert!(line.ends_with('\n'), "responses are newline-terminated: {line}");
    line.trim_end().to_string()
}

/// Upgrade a fresh connection to v2 and sanity-check the hello reply.
fn hello(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) {
    writeln!(stream, r#"{{"id":"hello","type":"hello","proto":2}}"#).expect("send hello");
    let resp = read_line(reader);
    let v = json::parse(&resp).expect("hello parses");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
    assert_eq!(v.get("proto").and_then(Json::as_u64), Some(2), "{resp}");
    assert_eq!(v.get("streaming").and_then(Json::as_bool), Some(true), "{resp}");
}

fn run_line(id: &str, n: u64) -> String {
    let source = json::escape(&TUNABLE.replace("var n = 1;", &format!("var n = {n};")));
    format!(
        r#"{{"id":"{id}","type":"run","source":{source},"backend":"sempe","max_cycles":80000000}}"#
    )
}

fn batch_line(id: &str, ns: &[u64]) -> String {
    let inputs: Vec<String> = ns.iter().map(|n| format!(r#"{{"n":{n}}}"#)).collect();
    format!(
        r#"{{"id":"{id}","type":"batch","source":{},"backend":"sempe","inputs":[{}],"max_cycles":80000000}}"#,
        json::escape(TUNABLE),
        inputs.join(",")
    )
}

#[test]
fn hello_negotiates_v2_and_enforces_its_rules() {
    let server = start(1);

    // Happy path, then the two v2-only rules on the same connection.
    let (mut stream, mut reader) = connect(&server);
    hello(&mut stream, &mut reader);

    // v2 requests must carry an id.
    writeln!(stream, r#"{{"type":"stats"}}"#).expect("send");
    let resp = read_line(&mut reader);
    assert!(resp.contains("E_BAD_REQUEST"), "{resp}");
    assert!(resp.contains("must carry an id"), "{resp}");

    // A second hello is a protocol error.
    writeln!(stream, r#"{{"id":"h2","type":"hello","proto":2}}"#).expect("send");
    let resp = read_line(&mut reader);
    assert!(resp.starts_with(r#"{"id":"h2","#), "{resp}");
    assert!(resp.contains("duplicate hello"), "{resp}");

    // An unsupported version is refused and the connection stays v1.
    let (mut stream, mut reader) = connect(&server);
    writeln!(stream, r#"{{"id":"h","type":"hello","proto":3}}"#).expect("send");
    let resp = read_line(&mut reader);
    assert!(resp.contains("unsupported protocol version 3"), "{resp}");
    writeln!(stream, r#"{{"type":"stats"}}"#).expect("send");
    let resp = read_line(&mut reader);
    assert!(resp.contains(r#""ok":true"#), "connection stays usable as v1: {resp}");

    server.shutdown();
    server.join();
}

#[test]
fn pipelined_responses_arrive_out_of_order_matched_by_id() {
    let server = start(2);
    let (mut stream, mut reader) = connect(&server);
    hello(&mut stream, &mut reader);

    // Slow request first, fast second, both in flight at once on two
    // workers: the fast response must overtake the slow one.
    writeln!(stream, "{}", run_line("slow", 120_000)).expect("send slow");
    writeln!(stream, "{}", run_line("fast", 2)).expect("send fast");

    let first = read_line(&mut reader);
    let second = read_line(&mut reader);
    assert!(first.starts_with(r#"{"id":"fast","#), "fast overtakes slow: {first}");
    assert!(second.starts_with(r#"{"id":"slow","#), "{second}");
    for resp in [&first, &second] {
        let v = json::parse(resp).expect("parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert_eq!(v.get("type").and_then(Json::as_str), Some("run"), "{resp}");
    }

    server.shutdown();
    server.join();
}

#[test]
fn batch_streams_early_frames_before_the_slow_last_trial() {
    let server = start(1);
    let (mut stream, mut reader) = connect(&server);
    hello(&mut stream, &mut reader);

    // 1000 trials: 999 trivial, the last one ~0.5 s of simulation. The
    // early frames must be on the wire while the tail trial is still
    // running — streaming, not buffer-then-flush.
    const ITEMS: u64 = 1000;
    let mut ns = vec![1u64; (ITEMS - 1) as usize];
    ns.push(120_000);
    writeln!(stream, "{}", batch_line("b", &ns)).expect("send batch");

    let mut first_frame_at: Option<Instant> = None;
    let mut next_seq = 0u64;
    let terminal = loop {
        let resp = read_line(&mut reader);
        let v = json::parse(&resp).expect("frame parses");
        assert!(resp.starts_with(r#"{"id":"b","#), "every line is id-tagged: {resp}");
        if v.get("partial").and_then(Json::as_bool) == Some(true) {
            first_frame_at.get_or_insert_with(Instant::now);
            assert_eq!(
                v.get("seq").and_then(Json::as_u64),
                Some(next_seq),
                "seq must be dense and monotonic: {resp}"
            );
            assert_eq!(v.get("item").and_then(Json::as_u64), Some(next_seq), "{resp}");
            next_seq += 1;
        } else {
            break v;
        }
    };
    let streamed_for = first_frame_at.expect("at least one frame streamed").elapsed();

    assert_eq!(next_seq, ITEMS, "one frame per trial");
    assert_eq!(terminal.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(terminal.get("items").and_then(Json::as_u64), Some(ITEMS));
    let Some(Json::Arr(results)) = terminal.get("results") else { panic!("results array") };
    assert_eq!(results.len() as u64, ITEMS, "terminal still carries the full result set");
    assert!(
        streamed_for >= Duration::from_millis(100),
        "first frame must precede the terminal by the slow trial's runtime, \
         gap was only {streamed_for:?}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn interleaved_streams_keep_per_id_seq_monotonic() {
    let server = start(2);
    let (mut stream, mut reader) = connect(&server);
    hello(&mut stream, &mut reader);

    // Two streamed batches in flight on one connection, one per worker:
    // their frames interleave on the wire, each id's seq stays dense.
    const ITEMS: usize = 30;
    let ns = vec![3_000u64; ITEMS];
    writeln!(stream, "{}", batch_line("a", &ns)).expect("send a");
    writeln!(stream, "{}", batch_line("b", &ns)).expect("send b");

    let mut next_seq: std::collections::HashMap<String, u64> = Default::default();
    let mut arrival: Vec<String> = Vec::new();
    let mut terminals = 0;
    while terminals < 2 {
        let resp = read_line(&mut reader);
        let v = json::parse(&resp).expect("frame parses");
        let id = v.get("id").and_then(Json::as_str).expect("id-tagged").to_string();
        assert!(id == "a" || id == "b", "{resp}");
        if v.get("partial").and_then(Json::as_bool) == Some(true) {
            let seq = next_seq.entry(id.clone()).or_insert(0);
            assert_eq!(v.get("seq").and_then(Json::as_u64), Some(*seq), "{resp}");
            *seq += 1;
            arrival.push(id);
        } else {
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
            assert_eq!(next_seq[&id], ITEMS as u64, "all frames precede the terminal");
            terminals += 1;
        }
    }
    // Both streams actually overlapped on the wire: the arrival order
    // switches id at least once before either stream finishes.
    let a_span = (
        arrival.iter().position(|id| id == "a").expect("a streamed"),
        arrival.iter().rposition(|id| id == "a").expect("a streamed"),
    );
    let b_span = (
        arrival.iter().position(|id| id == "b").expect("b streamed"),
        arrival.iter().rposition(|id| id == "b").expect("b streamed"),
    );
    assert!(
        a_span.0 < b_span.1 && b_span.0 < a_span.1,
        "streams must interleave, got disjoint spans {a_span:?} / {b_span:?}"
    );

    server.shutdown();
    server.join();
}

#[test]
fn torn_writes_on_v2_are_detectable_by_framing() {
    // write_trunc at 1000‰: every response is cut mid-line and the
    // connection closed — the newline framing is what lets a client
    // reject the fragment instead of trusting it.
    let plan = FaultPlan::parse("seed=1,write_trunc=1000").expect("plan");
    let server = Server::start(&ServiceConfig {
        workers: 1,
        fault_plan: Some(plan),
        ..ServiceConfig::default()
    })
    .expect("server");

    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("read timeout");
    writeln!(stream, r#"{{"id":"hello","type":"hello","proto":2}}"#).expect("send");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read to EOF");
    assert!(!bytes.is_empty(), "the torn fragment still flushes");
    assert!(!bytes.ends_with(b"\n"), "no terminator: the frame is detectably torn");
    assert!(json::parse(&String::from_utf8_lossy(&bytes)).is_err(), "fragment must not parse");

    server.shutdown();
    server.join();
}

#[test]
fn byte_at_a_time_requests_parse_identically() {
    let server = start(1);

    // Golden: one-shot send on a v2 connection.
    let (mut stream, mut reader) = connect(&server);
    hello(&mut stream, &mut reader);
    let line = run_line("x", 5);
    writeln!(stream, "{line}").expect("send");
    let golden = read_line(&mut reader);
    assert!(golden.contains(r#""ok":true"#), "{golden}");

    // Same request dribbled one byte per write on a fresh v2
    // connection: the framer must reassemble it into identical bytes.
    let (mut stream, mut reader) = connect(&server);
    hello(&mut stream, &mut reader);
    for b in line.as_bytes() {
        stream.write_all(std::slice::from_ref(b)).expect("send byte");
        stream.flush().expect("flush");
    }
    stream.write_all(b"\n").expect("terminator");
    let resp = read_line(&mut reader);
    assert_eq!(resp, golden, "byte-at-a-time delivery must not change the response");

    server.shutdown();
    server.join();
}

#[test]
fn legacy_connections_stay_in_order_without_frames() {
    let server = start(2);
    let (mut stream, mut reader) = connect(&server);

    // No hello: three pipelined requests (a streamed-eligible batch in
    // the middle) must come back strictly in order, one line each, with
    // no partial frames — byte-compatible with a v1 client.
    let reqs = [run_line("one", 2), batch_line("two", &[1, 1, 1]), run_line("three", 3)];
    for req in &reqs {
        writeln!(stream, "{req}").expect("send");
    }
    for id in ["one", "two", "three"] {
        let resp = read_line(&mut reader);
        assert!(resp.starts_with(&format!(r#"{{"id":"{id}","#)), "in-order: {resp}");
        let v = json::parse(&resp).expect("parses");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{resp}");
        assert!(v.get("partial").is_none(), "no frames on a legacy connection: {resp}");
    }

    server.shutdown();
    server.join();
}
