//! Differential testing: the out-of-order simulator must agree with the
//! in-order reference interpreter on final architectural state, for
//! arbitrary generated programs — with and without secure regions.

use proptest::prelude::*;
use sempe_isa::asm::Asm;
use sempe_isa::interp::{Interp, InterpMode};
use sempe_isa::program::Program;
use sempe_isa::reg::Reg;
use sempe_sim::{SimConfig, Simulator};

const FUEL: u64 = 2_000_000;

/// Working registers the generators are allowed to touch (skip x0/ra/sp).
fn wreg(i: u8) -> Reg {
    Reg::x(3 + (i % 13))
}

#[derive(Debug, Clone)]
enum GenOp {
    Alu { op: u8, rd: u8, rs1: u8, rs2: u8 },
    AluImm { op: u8, rd: u8, rs1: u8, imm: i32 },
    Cmov { rd: u8, rs: u8, rc: u8 },
    Load { rd: u8, idx: u8 },
    Store { src: u8, idx: u8 },
}

fn emit(a: &mut Asm, op: &GenOp, buf_base: Reg) {
    match *op {
        GenOp::Alu { op, rd, rs1, rs2 } => {
            let (rd, rs1, rs2) = (wreg(rd), wreg(rs1), wreg(rs2));
            match op % 8 {
                0 => a.add(rd, rs1, rs2),
                1 => a.sub(rd, rs1, rs2),
                2 => a.xor(rd, rs1, rs2),
                3 => a.and(rd, rs1, rs2),
                4 => a.or(rd, rs1, rs2),
                5 => a.mul(rd, rs1, rs2),
                6 => a.slt(rd, rs1, rs2),
                _ => a.sltu(rd, rs1, rs2),
            }
        }
        GenOp::AluImm { op, rd, rs1, imm } => {
            let (rd, rs1) = (wreg(rd), wreg(rs1));
            match op % 4 {
                0 => a.addi(rd, rs1, i64::from(imm)),
                1 => a.xori(rd, rs1, i64::from(imm)),
                2 => a.slli(rd, rs1, i64::from(imm.unsigned_abs() % 63)),
                _ => a.srli(rd, rs1, i64::from(imm.unsigned_abs() % 63)),
            }
        }
        GenOp::Cmov { rd, rs, rc } => a.cmovnz(wreg(rd), wreg(rs), wreg(rc)),
        GenOp::Load { rd, idx } => {
            // Bounded address: buf_base + (idx_reg & 0x38).
            let k = Reg::x(30);
            a.andi(k, wreg(idx), 0x38);
            a.add(k, k, buf_base);
            a.ld(wreg(rd), k, 0);
        }
        GenOp::Store { src, idx } => {
            let k = Reg::x(30);
            a.andi(k, wreg(idx), 0x38);
            a.add(k, k, buf_base);
            a.st(k, wreg(src), 0);
        }
    }
}

fn arb_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(op, rd, rs1, rs2)| GenOp::Alu { op, rd, rs1, rs2 }),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<i32>())
            .prop_map(|(op, rd, rs1, imm)| GenOp::AluImm { op, rd, rs1, imm }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(rd, rs, rc)| GenOp::Cmov { rd, rs, rc }),
        (any::<u8>(), any::<u8>()).prop_map(|(rd, idx)| GenOp::Load { rd, idx }),
        (any::<u8>(), any::<u8>()).prop_map(|(src, idx)| GenOp::Store { src, idx }),
    ]
}

/// Build a program: init registers, run op blocks separated by forward
/// branches, halt.
fn build_program(init: &[u64], segments: &[(u8, u8, u8, Vec<GenOp>)]) -> (Program, u64) {
    let mut a = Asm::new();
    let buf = a.zero_data(64);
    let buf_base = Reg::x(29);
    a.movi(buf_base, buf as i64);
    for (i, v) in init.iter().enumerate() {
        a.movi(wreg(i as u8), *v as i64);
    }
    for (cond_op, rs1, rs2, body) in segments {
        let skip = a.fresh_label("skip");
        match cond_op % 4 {
            0 => a.beq(wreg(*rs1), wreg(*rs2), skip),
            1 => a.bne(wreg(*rs1), wreg(*rs2), skip),
            2 => a.blt(wreg(*rs1), wreg(*rs2), skip),
            _ => a.bge(wreg(*rs1), wreg(*rs2), skip),
        }
        for op in body {
            emit(&mut a, op, buf_base);
        }
        a.bind(skip).unwrap();
    }
    a.halt();
    (a.assemble().unwrap(), buf)
}

fn compare_states(prog: &Program, buf: u64, config: SimConfig) {
    let mut interp = Interp::new(prog, InterpMode::Legacy).expect("interp");
    interp.run(FUEL).expect("interp runs to halt");

    let mut sim = Simulator::new(prog, config).expect("sim");
    let res = sim.run(FUEL).expect("sim runs to halt");
    assert!(res.halted);

    for i in 0..13u8 {
        let r = wreg(i);
        assert_eq!(
            sim.arch_reg(r),
            interp.reg(r),
            "architectural register {r} differs from the oracle"
        );
    }
    for slot in 0..8u64 {
        let addr = buf + slot * 8;
        assert_eq!(
            sim.mem().read_u64(addr),
            interp.mem().read_u64(addr),
            "memory word {slot} differs from the oracle"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn straightline_programs_match_oracle(
        init in prop::collection::vec(any::<u64>(), 13),
        body in prop::collection::vec(arb_op(), 1..60),
    ) {
        // One segment with an always-false branch guard (beq r, r would
        // skip; use blt r,r which is never taken).
        let (prog, buf) = build_program(&init, &[(3, 0, 0, body)]);
        compare_states(&prog, buf, SimConfig::baseline());
    }

    #[test]
    fn branchy_programs_match_oracle(
        init in prop::collection::vec(any::<u64>(), 13),
        segments in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), prop::collection::vec(arb_op(), 0..20)),
            1..8,
        ),
    ) {
        let (prog, buf) = build_program(&init, &segments);
        compare_states(&prog, buf, SimConfig::baseline());
        // The same binary must also be architecturally correct on the
        // SeMPE pipeline (no secure branches here, but the machinery is
        // live).
        let (prog2, buf2) = build_program(&init, &segments);
        compare_states(&prog2, buf2, SimConfig::paper());
    }
}

/// Loop with a data-dependent trip count: exercises the branch predictor,
/// squash/recovery and the LSQ under iteration.
#[test]
fn countdown_loop_matches_oracle() {
    for trips in [1u64, 2, 3, 7, 100] {
        let mut a = Asm::new();
        let buf = a.zero_data(64);
        let base = Reg::x(29);
        a.movi(base, buf as i64);
        a.movi(Reg::x(3), trips as i64);
        a.movi(Reg::x(4), 0); // accumulator
        let top = a.label("top");
        let done = a.label("done");
        a.bind(top).unwrap();
        a.beq(Reg::x(3), Reg::X0, done);
        a.add(Reg::x(4), Reg::x(4), Reg::x(3));
        a.st(base, Reg::x(4), 0);
        a.ld(Reg::x(5), base, 0);
        a.addi(Reg::x(3), Reg::x(3), -1);
        a.jmp(top);
        a.bind(done).unwrap();
        a.halt();
        let prog = a.assemble().unwrap();
        compare_states(&prog, buf, SimConfig::baseline());
    }
}

/// Function calls and returns through the RAS.
#[test]
fn call_return_matches_oracle() {
    let mut a = Asm::new();
    let buf = a.zero_data(64);
    let f = a.label("f");
    let over = a.label("over");
    a.movi(Reg::x(3), 10);
    a.call(f);
    a.call(f);
    a.call(f);
    a.jmp(over);
    a.bind(f).unwrap();
    a.addi(Reg::x(3), Reg::x(3), 7);
    a.ret();
    a.bind(over).unwrap();
    a.halt();
    let prog = a.assemble().unwrap();
    compare_states(&prog, buf, SimConfig::baseline());
}

/// Store-to-load forwarding with overlapping widths.
#[test]
fn forwarding_widths_match_oracle() {
    let mut a = Asm::new();
    let buf = a.zero_data(64);
    let base = Reg::x(29);
    a.movi(base, buf as i64);
    a.movi(Reg::x(3), 0x1122_3344_5566_7788);
    a.st(base, Reg::x(3), 0);
    a.ldb(Reg::x(4), base, 0); // forwarded byte
    a.ldw(Reg::x(5), base, 0); // forwarded word
    a.ld(Reg::x(6), base, 0); // forwarded qword
    a.stw(base, Reg::x(4), 16);
    a.ld(Reg::x(7), base, 16); // partial overlap: must wait for commit
    a.halt();
    let prog = a.assemble().unwrap();
    compare_states(&prog, buf, SimConfig::baseline());
}

// ---------------------------------------------------------------------
// Secure regions: the SeMPE pipeline must be architecturally equivalent
// to legacy true-path-only execution.
// ---------------------------------------------------------------------

/// Emit a (possibly nested) register-only secure region.
fn emit_secure_region(
    a: &mut Asm,
    cond: Reg,
    nt_ops: &[GenOp],
    t_ops: &[GenOp],
    nest: Option<(&[GenOp], &[GenOp], Reg)>,
    buf_base: Reg,
) {
    let then_ = a.fresh_label("then");
    let join = a.fresh_label("join");
    a.sbne(cond, Reg::X0, then_);
    for op in nt_ops {
        emit(a, op, buf_base);
    }
    if let Some((inner_nt, inner_t, inner_cond)) = nest {
        emit_secure_region(a, inner_cond, inner_nt, inner_t, None, buf_base);
    }
    a.jmp(join);
    a.bind(then_).unwrap();
    for op in t_ops {
        emit(a, op, buf_base);
    }
    a.bind(join).unwrap();
    a.eosjmp();
}

fn alu_only(ops: Vec<GenOp>) -> Vec<GenOp> {
    ops.into_iter()
        .filter(|o| matches!(o, GenOp::Alu { .. } | GenOp::AluImm { .. } | GenOp::Cmov { .. }))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn secure_regions_match_oracle(
        init in prop::collection::vec(any::<u64>(), 13),
        secret1 in any::<bool>(),
        secret2 in any::<bool>(),
        nt in prop::collection::vec(arb_op(), 0..15),
        t in prop::collection::vec(arb_op(), 0..15),
        inner_nt in prop::collection::vec(arb_op(), 0..10),
        inner_t in prop::collection::vec(arb_op(), 0..10),
    ) {
        // Register-only bodies: memory privatization is the compiler's
        // job (tested in sempe-compile); here we verify the hardware
        // register merge on arbitrary write patterns.
        let nt = alu_only(nt);
        let t = alu_only(t);
        let inner_nt = alu_only(inner_nt);
        let inner_t = alu_only(inner_t);

        let mut a = Asm::new();
        let buf = a.zero_data(64);
        let base = Reg::x(29);
        a.movi(base, buf as i64);
        for (i, v) in init.iter().enumerate() {
            a.movi(wreg(i as u8), *v as i64);
        }
        let c1 = Reg::x(28);
        let c2 = Reg::x(27);
        a.movi(c1, i64::from(secret1));
        a.movi(c2, i64::from(secret2));
        emit_secure_region(&mut a, c1, &nt, &t, Some((&inner_nt, &inner_t, c2)), base);
        a.halt();
        let prog = a.assemble().unwrap();

        // Oracle: legacy semantics (true path only).
        let mut interp = Interp::new(&prog, InterpMode::Legacy).expect("interp");
        interp.run(FUEL).expect("oracle halts");

        // Functional SeMPE interpreter agrees.
        let mut both = Interp::new(&prog, InterpMode::SempeFunctional).expect("interp");
        both.run(FUEL).expect("functional SeMPE halts");

        // Cycle-level SeMPE pipeline agrees.
        let mut sim = Simulator::new(&prog, SimConfig::paper()).expect("sim");
        sim.run(FUEL).expect("sim halts");

        for i in 0..13u8 {
            let r = wreg(i);
            prop_assert_eq!(both.reg(r), interp.reg(r), "functional model diverged at {}", r);
            prop_assert_eq!(sim.arch_reg(r), interp.reg(r), "pipeline diverged at {}", r);
        }
    }
}

/// A secure region nested in a loop, with non-secret branches inside the
/// SecBlocks — the combination of predictor-driven squashes and jbTable
/// bookkeeping.
#[test]
fn secure_region_in_loop_with_inner_branches() {
    for secret in [0u64, 1] {
        let mut a = Asm::new();
        let c = Reg::x(28);
        a.movi(c, secret as i64);
        a.movi(Reg::x(3), 20); // loop counter
        a.movi(Reg::x(4), 0); // accumulator
        let top = a.label("top");
        let done = a.label("done");
        a.bind(top).unwrap();
        a.beq(Reg::x(3), Reg::X0, done);
        {
            let then_ = a.fresh_label("then");
            let join = a.fresh_label("join");
            a.sbne(c, Reg::X0, then_);
            // NT path: add 1, with a non-secret inner branch.
            let even = a.fresh_label("even");
            a.andi(Reg::x(5), Reg::x(3), 1);
            a.beq(Reg::x(5), Reg::X0, even);
            a.addi(Reg::x(4), Reg::x(4), 1);
            a.bind(even).unwrap();
            a.addi(Reg::x(4), Reg::x(4), 1);
            a.jmp(join);
            a.bind(then_).unwrap();
            // T path: add 100.
            a.addi(Reg::x(4), Reg::x(4), 100);
            a.bind(join).unwrap();
            a.eosjmp();
        }
        a.addi(Reg::x(3), Reg::x(3), -1);
        a.jmp(top);
        a.bind(done).unwrap();
        a.halt();
        let prog = a.assemble().unwrap();

        let mut interp = Interp::new(&prog, InterpMode::Legacy).unwrap();
        interp.run(FUEL).unwrap();
        let mut sim = Simulator::new(&prog, SimConfig::paper()).unwrap();
        sim.run(FUEL).unwrap();
        assert_eq!(
            sim.arch_reg(Reg::x(4)),
            interp.reg(Reg::x(4)),
            "secret={secret}: accumulator must match the oracle"
        );
        let expected = if secret == 1 { 20 * 100 } else { 20 + 10 };
        assert_eq!(sim.arch_reg(Reg::x(4)), expected);
    }
}
