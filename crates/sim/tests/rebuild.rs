//! `Simulator::rebuild` must be indistinguishable from constructing a
//! fresh simulator: recycled allocations may carry capacity, never state.

use sempe_compile::wir::{Expr, WirBuilder};
use sempe_compile::{compile, Backend};
use sempe_sim::{SimConfig, Simulator};

fn modexp_prog(key: u64) -> sempe_compile::WirProgram {
    let mut b = WirBuilder::new();
    let k = b.var("key", key);
    let r = b.var("r", 1);
    let base = b.var("base", 7);
    let bit = b.var("bit", 0);
    let mut body = Vec::new();
    for i in 0..4 {
        body.push(b.assign(
            bit,
            Expr::bin(
                sempe_compile::BinOp::And,
                Expr::bin(sempe_compile::BinOp::Shr, Expr::Var(k), Expr::Const(i)),
                Expr::Const(1),
            ),
        ));
        body.push(sempe_compile::Stmt::If {
            cond: Expr::Var(bit),
            secret: true,
            then_: vec![b.assign(
                r,
                Expr::bin(
                    sempe_compile::BinOp::Rem,
                    Expr::bin(sempe_compile::BinOp::Mul, Expr::Var(r), Expr::Var(base)),
                    Expr::Const(1_000_003),
                ),
            )],
            else_: Vec::new(),
        });
        body.push(b.assign(
            base,
            Expr::bin(
                sempe_compile::BinOp::Rem,
                Expr::bin(sempe_compile::BinOp::Mul, Expr::Var(base), Expr::Var(base)),
                Expr::Const(1_000_003),
            ),
        ));
    }
    for s in body {
        b.push(s);
    }
    b.output(r);
    b.build()
}

#[test]
fn rebuild_matches_fresh_construction_exactly() {
    let cases = [
        (compile(&modexp_prog(0b1011), Backend::Sempe).unwrap(), SimConfig::paper()),
        (compile(&modexp_prog(0b1011), Backend::Baseline).unwrap(), SimConfig::baseline()),
        (compile(&modexp_prog(0b0010), Backend::Sempe).unwrap(), SimConfig::paper().with_trace()),
        (compile(&modexp_prog(0b1111), Backend::Cte).unwrap(), SimConfig::baseline()),
    ];

    // Cold reference: a fresh simulator per case.
    let mut reference = Vec::new();
    for (cw, config) in &cases {
        let mut sim = Simulator::new(cw.program(), *config).expect("builds");
        let res = sim.run(50_000_000).expect("halts");
        reference.push((res.cycles(), res.committed(), cw.read_outputs(sim.mem())));
    }

    // Warm arena: one simulator rebuilt across all cases, twice over, in
    // an order that forces every (program, config) transition.
    let (cw0, config0) = &cases[0];
    let mut arena = Simulator::new(cw0.program(), *config0).expect("builds");
    for round in 0..2 {
        for (i, (cw, config)) in cases.iter().enumerate() {
            arena.rebuild(cw.program(), *config).expect("rebuilds");
            let res = arena.run(50_000_000).expect("halts");
            let got = (res.cycles(), res.committed(), cw.read_outputs(arena.mem()));
            assert_eq!(got, reference[i], "round {round} case {i} diverged after rebuild");
        }
    }

    // The shared arena helper (first use constructs, later uses rebuild)
    // must be cycle-identical to both paths above.
    let mut slot: Option<Simulator> = None;
    for round in 0..2 {
        for (i, (cw, config)) in cases.iter().enumerate() {
            let sim = Simulator::rebuild_or_new(&mut slot, cw.program(), *config)
                .expect("arena helper builds");
            let res = sim.run(50_000_000).expect("halts");
            let got = (res.cycles(), res.committed(), cw.read_outputs(sim.mem()));
            assert_eq!(got, reference[i], "round {round} case {i} diverged via rebuild_or_new");
        }
    }
}
