//! Counter-lifetime contract across arena reuse (`Simulator::rebuild`)
//! and fork-server restores (`Simulator::restore_from`).
//!
//! The service keeps one simulator arena per worker thread and reuses
//! it across jobs, so any counter that silently survives a rebuild or
//! restore leaks one job's diagnostics into the next. This suite pins
//! the intended lifetimes:
//!
//! * `SimStats` — reset by `rebuild` (fresh machine), rolled back to
//!   the checkpoint-time baseline by `restore_from`;
//! * `skip_counters()` — per-trial: reset by both `rebuild` and
//!   `restore_from`;
//! * `HostProfile` — per-request: reset by `rebuild` and
//!   `take_host_profile()`, but *accumulating* across `restore_from`
//!   so one ledger covers a whole restore-patch-run batch.

use sempe_compile::wir::{Expr, WirBuilder};
use sempe_compile::{compile, Backend};
use sempe_sim::{SimConfig, Simulator};

/// A secret-branching loop with enough memory traffic to commit real
/// cycles and trigger next-event skips.
fn workload(key: u64) -> sempe_compile::CompiledWorkload {
    let mut b = WirBuilder::new();
    let k = b.var("key", key);
    let r = b.var("r", 1);
    let base = b.var("base", 7);
    let bit = b.var("bit", 0);
    let mut body = Vec::new();
    for i in 0..6 {
        body.push(b.assign(
            bit,
            Expr::bin(
                sempe_compile::BinOp::And,
                Expr::bin(sempe_compile::BinOp::Shr, Expr::Var(k), Expr::Const(i)),
                Expr::Const(1),
            ),
        ));
        body.push(sempe_compile::Stmt::If {
            cond: Expr::Var(bit),
            secret: true,
            then_: vec![b.assign(
                r,
                Expr::bin(
                    sempe_compile::BinOp::Rem,
                    Expr::bin(sempe_compile::BinOp::Mul, Expr::Var(r), Expr::Var(base)),
                    Expr::Const(1_000_003),
                ),
            )],
            else_: Vec::new(),
        });
        body.push(b.assign(
            base,
            Expr::bin(
                sempe_compile::BinOp::Rem,
                Expr::bin(sempe_compile::BinOp::Mul, Expr::Var(base), Expr::Var(base)),
                Expr::Const(1_000_003),
            ),
        ));
    }
    for s in body {
        b.push(s);
    }
    b.output(r);
    compile(&b.build(), Backend::Sempe).unwrap()
}

const FUEL: u64 = 1_000_000;

#[test]
fn rebuild_resets_stats_skip_counters_and_host_profile() {
    let cw = workload(0b101101);
    let prog = cw.program();
    let mut sim = Simulator::new(prog, SimConfig::paper()).unwrap();
    sim.run(FUEL).unwrap();
    let first_stats = sim.stats();
    assert!(first_stats.cycles > 0, "the workload must commit cycles");
    let profile = sim.host_profile();
    assert!(profile.runs == 1, "one run recorded: {profile:?}");
    assert!(profile.run_ns > 0, "a multi-thousand-cycle run takes host time");
    assert!(profile.decode_ns > 0, "construction decodes the image");

    // Rebuild for the next job: every ledger restarts from zero.
    sim.rebuild(prog, SimConfig::paper()).unwrap();
    assert_eq!(sim.stats().cycles, 0, "stats reset on rebuild");
    assert_eq!(sim.skip_counters(), (0, 0), "skip counters reset on rebuild");
    let fresh = sim.host_profile();
    assert_eq!((fresh.runs, fresh.restores, fresh.run_ns), (0, 0, 0));
    assert_eq!((fresh.skipped_cycles, fresh.skips), (0, 0));
    assert!(fresh.decode_ns > 0, "rebuild re-decodes, starting the new ledger");

    // And a rerun reproduces the first run exactly — no carried state.
    let rerun = sim.run(FUEL).unwrap();
    assert_eq!(rerun.stats, first_stats, "rebuild must not leak state into stats");
}

#[test]
fn restore_rolls_stats_back_and_accumulates_host_profile() {
    let cw = workload(0b110011);
    let mut sim = Simulator::new(cw.program(), SimConfig::paper()).unwrap();
    let baseline = sim.stats();
    let cp = sim.checkpoint().unwrap();

    let mut last_stats = None;
    for trial in 1..=3u64 {
        sim.restore_from(&cp);
        // Per-trial ledgers rewound to the fork point…
        assert_eq!(sim.stats().cycles, baseline.cycles, "stats roll back to the checkpoint");
        assert_eq!(sim.skip_counters(), (0, 0), "skip counters reset per restore");
        // …while the per-request ledger keeps counting.
        assert_eq!(sim.host_profile().restores, trial, "restores accumulate");
        assert_eq!(sim.host_profile().runs, trial - 1);

        let result = sim.run(FUEL).unwrap();
        if let Some(prev) = last_stats {
            assert_eq!(result.stats, prev, "every trial replays identically");
        }
        last_stats = Some(result.stats);
    }

    let profile = sim.take_host_profile();
    assert_eq!(profile.runs, 3, "three runs in the request ledger: {profile:?}");
    assert_eq!(profile.restores, 3);
    assert!(profile.run_ns > 0);
    // `take` hands the ledger off and zeroes it for the next request.
    assert_eq!(sim.host_profile(), sempe_sim::HostProfile::default());
}

#[test]
fn host_profile_skip_twin_matches_per_trial_counters_after_one_run() {
    let cw = workload(0b111111);
    let mut sim = Simulator::new(cw.program(), SimConfig::paper()).unwrap();
    sim.run(FUEL).unwrap();
    let (skipped, skips) = sim.skip_counters();
    let profile = sim.host_profile();
    assert_eq!(
        (profile.skipped_cycles, profile.skips),
        (skipped, skips),
        "after a single run since rebuild the accumulating twin agrees"
    );
}
