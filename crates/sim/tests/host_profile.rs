//! Counter-lifetime contract across arena reuse (`Simulator::rebuild`)
//! and fork-server restores (`Simulator::restore_from`).
//!
//! The service keeps one simulator arena per worker thread and reuses
//! it across jobs, so any counter that silently survives a rebuild or
//! restore leaks one job's diagnostics into the next. This suite pins
//! the intended lifetimes:
//!
//! * `SimStats` — reset by `rebuild` (fresh machine), rolled back to
//!   the checkpoint-time baseline by `restore_from`;
//! * `skip_counters()` — per-trial: reset by both `rebuild` and
//!   `restore_from`;
//! * `HostProfile` — per-request: reset by `rebuild` and
//!   `take_host_profile()`, but *accumulating* across `restore_from`
//!   so one ledger covers a whole restore-patch-run batch.

use sempe_compile::wir::{Expr, WirBuilder};
use sempe_compile::{compile, Backend};
use sempe_sim::{SimConfig, Simulator, Stepping};

/// A secret-branching loop with enough memory traffic to commit real
/// cycles and trigger next-event skips.
fn workload(key: u64) -> sempe_compile::CompiledWorkload {
    let mut b = WirBuilder::new();
    let k = b.var("key", key);
    let r = b.var("r", 1);
    let base = b.var("base", 7);
    let bit = b.var("bit", 0);
    let mut body = Vec::new();
    for i in 0..6 {
        body.push(b.assign(
            bit,
            Expr::bin(
                sempe_compile::BinOp::And,
                Expr::bin(sempe_compile::BinOp::Shr, Expr::Var(k), Expr::Const(i)),
                Expr::Const(1),
            ),
        ));
        body.push(sempe_compile::Stmt::If {
            cond: Expr::Var(bit),
            secret: true,
            then_: vec![b.assign(
                r,
                Expr::bin(
                    sempe_compile::BinOp::Rem,
                    Expr::bin(sempe_compile::BinOp::Mul, Expr::Var(r), Expr::Var(base)),
                    Expr::Const(1_000_003),
                ),
            )],
            else_: Vec::new(),
        });
        body.push(b.assign(
            base,
            Expr::bin(
                sempe_compile::BinOp::Rem,
                Expr::bin(sempe_compile::BinOp::Mul, Expr::Var(base), Expr::Var(base)),
                Expr::Const(1_000_003),
            ),
        ));
    }
    for s in body {
        b.push(s);
    }
    b.output(r);
    compile(&b.build(), Backend::Sempe).unwrap()
}

const FUEL: u64 = 1_000_000;

#[test]
fn rebuild_resets_stats_skip_counters_and_host_profile() {
    let cw = workload(0b101101);
    let prog = cw.program();
    let mut sim = Simulator::new(prog, SimConfig::paper()).unwrap();
    sim.run(FUEL).unwrap();
    let first_stats = sim.stats();
    assert!(first_stats.cycles > 0, "the workload must commit cycles");
    let profile = sim.host_profile();
    assert!(profile.runs == 1, "one run recorded: {profile:?}");
    assert!(profile.run_ns > 0, "a multi-thousand-cycle run takes host time");
    assert!(profile.decode_ns > 0, "construction decodes the image");

    // Rebuild for the next job: every ledger restarts from zero.
    sim.rebuild(prog, SimConfig::paper()).unwrap();
    assert_eq!(sim.stats().cycles, 0, "stats reset on rebuild");
    assert_eq!(sim.skip_counters(), (0, 0), "skip counters reset on rebuild");
    let fresh = sim.host_profile();
    assert_eq!((fresh.runs, fresh.restores, fresh.run_ns), (0, 0, 0));
    assert_eq!((fresh.skipped_cycles, fresh.skips), (0, 0));
    assert!(fresh.decode_ns > 0, "rebuild re-decodes, starting the new ledger");

    // And a rerun reproduces the first run exactly — no carried state.
    let rerun = sim.run(FUEL).unwrap();
    assert_eq!(rerun.stats, first_stats, "rebuild must not leak state into stats");
}

#[test]
fn restore_rolls_stats_back_and_accumulates_host_profile() {
    let cw = workload(0b110011);
    let mut sim = Simulator::new(cw.program(), SimConfig::paper()).unwrap();
    let baseline = sim.stats();
    let cp = sim.checkpoint().unwrap();

    let mut last_stats = None;
    for trial in 1..=3u64 {
        sim.restore_from(&cp);
        // Per-trial ledgers rewound to the fork point…
        assert_eq!(sim.stats().cycles, baseline.cycles, "stats roll back to the checkpoint");
        assert_eq!(sim.skip_counters(), (0, 0), "skip counters reset per restore");
        // …while the per-request ledger keeps counting.
        assert_eq!(sim.host_profile().restores, trial, "restores accumulate");
        assert_eq!(sim.host_profile().runs, trial - 1);

        let result = sim.run(FUEL).unwrap();
        if let Some(prev) = last_stats {
            assert_eq!(result.stats, prev, "every trial replays identically");
        }
        last_stats = Some(result.stats);
    }

    let profile = sim.take_host_profile();
    assert_eq!(profile.runs, 3, "three runs in the request ledger: {profile:?}");
    assert_eq!(profile.restores, 3);
    assert!(profile.run_ns > 0);
    // `take` hands the ledger off and zeroes it for the next request.
    assert_eq!(sim.host_profile(), sempe_sim::HostProfile::default());
}

/// A tiered-execution workload: a long public loop with memory traffic
/// (fast-forwarded, with enough warm calls to cross the sampled
/// `warm_ns` timing threshold) feeding a secret region (detailed).
fn tiered_workload(key: u64) -> sempe_compile::CompiledWorkload {
    use sempe_compile::BinOp;
    let mut b = WirBuilder::new();
    let k = b.var("key", key);
    let acc = b.var("acc", 1);
    let i = b.var("i", 0);
    let tab = b.array("tab", 8, vec![0; 8]);
    let body = vec![
        b.store(tab, Expr::bin(BinOp::And, Expr::Var(i), Expr::Const(7)), Expr::Var(acc)),
        b.assign(
            acc,
            Expr::bin(
                BinOp::And,
                Expr::bin(
                    BinOp::Add,
                    Expr::bin(BinOp::Mul, Expr::Var(acc), Expr::Const(3)),
                    Expr::Var(i),
                ),
                Expr::Const(0xF_FFFF),
            ),
        ),
        b.assign(i, Expr::bin(BinOp::Add, Expr::Var(i), Expr::Const(1))),
    ];
    b.while_loop(Expr::bin(BinOp::Ltu, Expr::Var(i), Expr::Const(500)), 501, body);
    let bump = b.assign(acc, Expr::bin(BinOp::Add, Expr::Var(acc), Expr::Const(13)));
    b.if_secret(Expr::bin(BinOp::And, Expr::Var(k), Expr::Const(1)), vec![bump], Vec::new());
    b.output(acc);
    compile(&b.build(), Backend::Sempe).unwrap()
}

#[test]
fn fast_forward_attribution_resets_on_rebuild_and_accumulates_across_restores() {
    let cw = tiered_workload(0b101011);
    let prog = cw.program();
    let tiered = SimConfig::paper().with_stepping(Stepping::Tiered);
    let mut sim = Simulator::new(prog, tiered).unwrap();
    let first = sim.run(FUEL).unwrap();
    assert!(first.stats.ff_committed > 0, "the public squaring chain fast-forwards");
    let profile = sim.host_profile();
    assert_eq!(
        profile.ff_instructions, first.stats.ff_committed,
        "the profile twin bills exactly the instructions the engine retired functionally"
    );
    assert!(profile.ff_ns > 0, "fast-forwarding takes host time: {profile:?}");
    assert!(profile.warm_ns > 0, "warming the timed structures takes host time: {profile:?}");

    // Rebuild for the next job: fast-forward attribution restarts with
    // the rest of the ledger.
    sim.rebuild(prog, tiered).unwrap();
    let fresh = sim.host_profile();
    assert_eq!((fresh.ff_instructions, fresh.ff_ns, fresh.warm_ns), (0, 0, 0));

    // Across a restore-run batch the per-request ledger accumulates,
    // while per-trial `SimStats::ff_committed` rolls back each restore.
    let cp = sim.checkpoint().unwrap();
    let mut total = 0;
    for trial in 1..=3u64 {
        sim.restore_from(&cp);
        assert_eq!(sim.stats().ff_committed, 0, "per-trial stats roll back to the fork point");
        let res = sim.run(FUEL).unwrap();
        assert_eq!(res.stats.ff_committed, first.stats.ff_committed, "trials replay identically");
        total += res.stats.ff_committed;
        assert_eq!(
            sim.host_profile().ff_instructions,
            total,
            "trial {trial}: the request ledger keeps counting"
        );
    }

    // `take` drains fast-forward attribution like every other field.
    let taken = sim.take_host_profile();
    assert_eq!(taken.ff_instructions, total);
    assert_eq!(sim.host_profile(), sempe_sim::HostProfile::default());
}

#[test]
fn host_profile_skip_twin_matches_per_trial_counters_after_one_run() {
    let cw = workload(0b111111);
    let mut sim = Simulator::new(cw.program(), SimConfig::paper()).unwrap();
    sim.run(FUEL).unwrap();
    let (skipped, skips) = sim.skip_counters();
    let profile = sim.host_profile();
    assert_eq!(
        (profile.skipped_cycles, profile.skips),
        (skipped, skips),
        "after a single run since rebuild the accumulating twin agrees"
    );
}
