//! Timing regression tests: pin down the microarchitectural behaviors
//! the experiments depend on, so a refactor cannot silently change the
//! cost model.

use sempe_isa::asm::Asm;
use sempe_isa::reg::Reg;
use sempe_isa::Program;
use sempe_sim::{SimConfig, Simulator};

fn cycles(prog: &Program, config: SimConfig) -> u64 {
    let mut sim = Simulator::new(prog, config).expect("sim");
    sim.run(10_000_000).expect("halts").cycles()
}

/// Dependent ALU chains retire ~1 op/cycle; independent chains exploit
/// the 8-wide machine. The op sequence sits in a loop so the instruction
/// stream is hot and the measurement is execute-limited, not cold-fetch
/// limited.
#[test]
fn ilp_is_exploited_and_dependences_serialize() {
    let ops_per_trip = 64usize;
    let trips = 16i64;
    let build = |dependent: bool| {
        let mut a = Asm::new();
        a.movi(Reg::x(2 + 13), trips); // x15 = trip counter
        for r in 3..11u8 {
            a.movi(Reg::x(r), 1);
        }
        let top = a.label("top");
        let done = a.label("done");
        a.bind(top).unwrap();
        a.beq(Reg::x(15), Reg::X0, done);
        for i in 0..ops_per_trip {
            let r = if dependent { Reg::x(3) } else { Reg::x(3 + (i % 8) as u8) };
            a.addi(r, r, 1);
        }
        a.addi(Reg::x(15), Reg::x(15), -1);
        a.jmp(top);
        a.bind(done).unwrap();
        a.halt();
        a.assemble().unwrap()
    };
    let dep = cycles(&build(true), SimConfig::baseline());
    let indep = cycles(&build(false), SimConfig::baseline());
    assert!(
        dep as f64 > 2.0 * indep as f64,
        "dependent chain ({dep}) must be much slower than independent ops ({indep})"
    );
    // The dependent chain costs at least one cycle per op.
    let total_ops = ops_per_trip * trips as usize;
    assert!(dep as usize >= total_ops, "{total_ops} dependent adds in only {dep} cycles");
}

/// Division is much slower than addition (20-cycle divider). Measured as
/// the delta between two loops, cancelling fetch and loop overhead.
#[test]
fn division_latency_shows() {
    let build = |use_div: bool| {
        let mut a = Asm::new();
        a.movi(Reg::x(15), 16); // trips
        a.movi(Reg::x(4), 3);
        let top = a.label("top");
        let done = a.label("done");
        a.bind(top).unwrap();
        a.beq(Reg::x(15), Reg::X0, done);
        a.movi(Reg::x(3), 1_000_000);
        for _ in 0..16 {
            if use_div {
                a.divu(Reg::x(3), Reg::x(3), Reg::x(4));
            } else {
                a.add(Reg::x(3), Reg::x(3), Reg::x(4));
            }
        }
        a.addi(Reg::x(15), Reg::x(15), -1);
        a.jmp(top);
        a.bind(done).unwrap();
        a.halt();
        a.assemble().unwrap()
    };
    let divs = cycles(&build(true), SimConfig::baseline());
    let adds = cycles(&build(false), SimConfig::baseline());
    // 256 divs at ~20 cycles each dominate; adds retire ~1/cycle.
    assert!(divs > 3 * adds, "dependent divs ({divs}) vs adds ({adds})");
    assert!(divs > 256 * 15, "divider latency must show: {divs} cycles");
}

/// A cache-missing pointer chase pays the memory latency per hop; a
/// cache-hitting one does not.
#[test]
fn memory_latency_is_visible_in_pointer_chases() {
    let hops = 32usize;
    // Pre-link a pointer chain through a *shuffled* permutation of
    // widely spaced slots: constant strides would be caught by the
    // stride prefetcher (correctly — see
    // `prefetch_effect_turns_sequential_misses_into_hits`), so the walk
    // order must be irregular to expose raw memory latency.
    let mut a = Asm::new();
    let slots = hops + 1;
    let stride = 4096 + 64;
    let base = a.zero_data(slots * stride);
    let mut order: Vec<usize> = (0..slots).collect();
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    for i in (1..slots).rev() {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        order.swap(i, (rng_state as usize) % (i + 1));
    }
    let mut chain = Vec::new();
    for w in 0..slots {
        // The w-th visited slot points at the (w+1)-th visited slot.
        let here = base + (order[w] * stride) as u64;
        let next = if w + 1 < slots { base + (order[w + 1] * stride) as u64 } else { 0 };
        chain.push((here, next));
    }
    let entry_slot = chain[0].0;
    a.movi(Reg::x(3), entry_slot as i64);
    let top = a.label("top");
    let done = a.label("done");
    a.bind(top).unwrap();
    a.beq(Reg::x(3), Reg::X0, done);
    a.ld(Reg::x(3), Reg::x(3), 0); // truly dependent load
    a.jmp(top);
    a.bind(done).unwrap();
    a.halt();
    let prog = a.assemble().unwrap();

    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    for (addr, next) in &chain {
        sim.mem_mut().write_u64(*addr, *next);
    }
    let cold = sim.run(10_000_000).unwrap().cycles();
    assert!(
        cold > (hops as u64) * 100,
        "cold dependent chase of {hops} hops in {cold} cycles is too fast"
    );

    // Same chain length, all hops within one hot line.
    let mut a = Asm::new();
    let buf = a.zero_data(64);
    a.movi(Reg::x(3), buf as i64);
    a.movi(Reg::x(15), hops as i64);
    let top = a.label("top");
    let done = a.label("done");
    a.bind(top).unwrap();
    a.beq(Reg::x(15), Reg::X0, done);
    a.ld(Reg::x(4), Reg::x(3), 0);
    a.addi(Reg::x(15), Reg::x(15), -1);
    a.jmp(top);
    a.bind(done).unwrap();
    a.halt();
    let warm = cycles(&a.assemble().unwrap(), SimConfig::baseline());
    assert!(warm * 4 < cold, "hitting loads ({warm}) must be far cheaper than misses ({cold})");
}

/// A data-dependent unpredictable branch costs mispredict penalties; a
/// biased branch trains away.
#[test]
fn branch_predictability_matters() {
    let build = |pattern: fn(u64) -> bool| {
        // x4 = LCG state; branch on a bit of it (pattern decides which).
        let mut a = Asm::new();
        a.movi(Reg::x(3), 256); // trips
        a.movi(Reg::x(4), 12345);
        a.movi(Reg::x(7), 0);
        let top = a.label("top");
        let done = a.label("done");
        let skip_l = a.label("skip");
        a.bind(top).unwrap();
        a.beq(Reg::x(3), Reg::X0, done);
        a.movi(Reg::x(5), 6_364_136_223_846_793_005i64);
        a.mul(Reg::x(4), Reg::x(4), Reg::x(5));
        a.movi(Reg::x(5), 1_442_695_040_888_963_407i64);
        a.add(Reg::x(4), Reg::x(4), Reg::x(5));
        // Select the branch driver: low bit of LCG (random) or constant 0.
        let _ = pattern;
        a.srli(Reg::x(6), Reg::x(4), 17);
        a.andi(Reg::x(6), Reg::x(6), 1);
        a.beq(Reg::x(6), Reg::X0, skip_l);
        a.addi(Reg::x(7), Reg::x(7), 1);
        a.bind(skip_l).unwrap();
        a.addi(Reg::x(3), Reg::x(3), -1);
        a.jmp(top);
        a.bind(done).unwrap();
        a.halt();
        a.assemble().unwrap()
    };
    // Random branch version.
    let prog = build(|x| x & 1 == 0);
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    sim.run(10_000_000).unwrap();
    let random_mispredicts = sim.stats().bpred.cond_mispredicts;
    // There are ~256 data-random branches; a healthy predictor should
    // still mispredict a sizable fraction of them, and essentially never
    // mispredict the loop-control branches.
    assert!(random_mispredicts > 40, "random branches must mispredict ({random_mispredicts})");

    // Biased version: replace the driver with constant zero.
    let mut a = Asm::new();
    a.movi(Reg::x(3), 256);
    a.movi(Reg::x(7), 0);
    let top = a.label("top");
    let done = a.label("done");
    let skip_l = a.label("skip");
    a.bind(top).unwrap();
    a.beq(Reg::x(3), Reg::X0, done);
    a.movi(Reg::x(6), 0);
    a.beq(Reg::x(6), Reg::X0, skip_l);
    a.addi(Reg::x(7), Reg::x(7), 1);
    a.bind(skip_l).unwrap();
    a.addi(Reg::x(3), Reg::x(3), -1);
    a.jmp(top);
    a.bind(done).unwrap();
    a.halt();
    let prog = a.assemble().unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    sim.run(10_000_000).unwrap();
    let biased = sim.stats().bpred.cond_mispredicts;
    assert!(
        biased * 4 < random_mispredicts,
        "biased branches ({biased}) must train far below random ({random_mispredicts})"
    );
}

/// The three SeMPE drains and the SPM spill stalls appear in the stats
/// and scale with the snapshot size.
#[test]
fn drain_and_spill_accounting() {
    let mut a = Asm::new();
    let then_ = a.label("then");
    let join = a.label("join");
    a.movi(Reg::x(3), 0);
    a.sbne(Reg::x(3), Reg::X0, then_);
    a.addi(Reg::x(4), Reg::x(4), 1);
    a.jmp(join);
    a.bind(then_).unwrap();
    a.addi(Reg::x(4), Reg::x(4), 2);
    a.bind(join).unwrap();
    a.eosjmp();
    a.halt();
    let prog = a.assemble().unwrap();

    let mut sim = Simulator::new(&prog, SimConfig::paper()).unwrap();
    sim.run(1_000_000).unwrap();
    let stats = sim.stats();
    assert_eq!(stats.sempe.drains, 3, "one region = three drains (Fig 6)");
    assert!(stats.sempe.spm_stall_cycles > 0);
    assert_eq!(stats.sempe.regions_completed, 1);

    // Halving SPM throughput increases total time.
    let halved = {
        let mut config = SimConfig::paper();
        config.sempe.spm.throughput_bytes_per_cycle = 8;
        cycles(&prog, config)
    };
    let normal = cycles(&prog, SimConfig::paper());
    assert!(halved > normal, "slower scratchpad must cost cycles ({halved} vs {normal})");
}

/// Store-to-load forwarding is faster than going through the cache after
/// a conflicting store commits.
#[test]
fn forwarding_beats_waiting() {
    // Exact-match forwarding: store then immediately load same addr.
    let mut a = Asm::new();
    let buf = a.zero_data(64) as i64;
    a.movi(Reg::x(3), buf);
    a.movi(Reg::x(4), 99);
    for _ in 0..64 {
        a.st(Reg::x(3), Reg::x(4), 0);
        a.ld(Reg::x(4), Reg::x(3), 0);
        a.addi(Reg::x(4), Reg::x(4), 1);
    }
    a.halt();
    let prog = a.assemble().unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    sim.run(10_000_000).unwrap();
    assert!(sim.stats().load_forwards >= 32, "forwarding must engage");
    assert_eq!(sim.arch_reg(Reg::x(4)), 99 + 64);
}
