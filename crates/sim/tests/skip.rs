//! Cycle-skip equivalence tests: runs with the next-event fast-forward
//! (the default) must be **bit-for-bit identical** — cycles, committed
//! count, full statistics, architectural state, `Strictness::Full`
//! observation traces, and error values including the cycle they fire
//! at — to runs under forced classic 1-cycle stepping
//! ([`SimConfig::with_classic_stepping`]).
//!
//! The golden cycle tables in `crates/bench/tests/golden_cycles.rs`
//! (whose numbers predate skipping) and the fuzzer's skip differential
//! extend this proof to every workload and every generated program.

use sempe_compile::{compile, parse_wir, Backend};
use sempe_core::{first_divergence, Strictness};
use sempe_isa::asm::Asm;
use sempe_isa::program::Program;
use sempe_isa::reg::Reg;
use sempe_sim::pipeline::SimError;
use sempe_sim::{SimConfig, SimStats, Simulator};
use sempe_workloads::membound::{pointer_chase_program, ChaseParams};

const FUEL: u64 = 50_000_000;

/// Outcome of one run, with everything the equivalence compares.
struct Observed {
    result: Result<SimStats, SimError>,
    final_cycle_stats: SimStats,
    regs: Vec<u64>,
    trace: sempe_core::trace::ObservationTrace,
    skipped: u64,
    skips: u64,
}

fn observe(prog: &Program, config: SimConfig, fuel: u64) -> Observed {
    let mut sim = Simulator::new(prog, config.with_trace()).expect("builds");
    let result = sim.run(fuel).map(|r| r.stats);
    let (skipped, skips) = sim.skip_counters();
    Observed {
        result,
        final_cycle_stats: sim.stats(),
        regs: (0..32).map(|i| sim.arch_reg(Reg::x(i))).collect(),
        trace: sim.trace().clone(),
        skipped,
        skips,
    }
}

/// Run `prog` under both stepping modes and assert full equivalence.
/// Returns the skip-mode counters so callers can assert skipping
/// actually engaged.
fn assert_equivalent(prog: &Program, config: SimConfig, fuel: u64) -> (u64, u64) {
    let skip = observe(prog, config, fuel);
    let classic = observe(prog, config.with_classic_stepping(), fuel);
    assert_eq!(skip.result, classic.result, "run outcome must match");
    assert_eq!(skip.final_cycle_stats, classic.final_cycle_stats, "statistics must match");
    assert_eq!(skip.regs, classic.regs, "architectural registers must match");
    assert_eq!(
        first_divergence(&skip.trace, &classic.trace, Strictness::Full),
        None,
        "observation traces must match"
    );
    assert_eq!((classic.skipped, classic.skips), (0, 0), "classic stepping must never skip");
    (skip.skipped, skip.skips)
}

/// A serialized chain of dependent cache-missing loads: the stall-heavy
/// shape skipping exists for. Each load's address hangs off the previous
/// load's (zero) value, so the machine drains completely between misses.
fn miss_chain_program(links: u32) -> Program {
    let mut a = Asm::new();
    a.movi(Reg::x(5), 0);
    a.movi(Reg::x(6), 0x20_0000);
    a.movi(Reg::x(7), 0);
    for _ in 0..links {
        // x6 advances by a miss-distance stride but *through* x5, the
        // previous load's value, serializing the chain.
        a.add(Reg::x(6), Reg::x(6), Reg::x(5));
        a.addi(Reg::x(6), Reg::x(6), 8192);
        a.ld(Reg::x(5), Reg::x(6), 0);
        a.add(Reg::x(7), Reg::x(7), Reg::x(5));
    }
    a.halt();
    a.assemble().expect("assembles")
}

#[test]
fn stall_heavy_chain_is_equivalent_and_actually_skips() {
    let prog = miss_chain_program(24);
    for config in [SimConfig::baseline(), SimConfig::paper()] {
        let (skipped, skips) = assert_equivalent(&prog, config, FUEL);
        assert!(skips >= 20, "a 24-miss chain must fast-forward repeatedly, got {skips}");
        assert!(skipped > 2000, "most of the stall cycles must be skipped, got {skipped}");
    }
}

#[test]
fn secure_regions_with_memory_traffic_are_equivalent() {
    // Secret-dependent region with loads on both paths plus SPM drains:
    // exercises sJMP rename blocking, eosJMP redirect stalls, and the
    // drain-stall bulk accounting under skip.
    let mut a = Asm::new();
    let then_ = a.label("then");
    let join = a.label("join");
    a.movi(Reg::x(3), 1);
    a.movi(Reg::x(6), 0x30_0000);
    a.sbne(Reg::x(3), Reg::X0, then_);
    a.ld(Reg::x(5), Reg::x(6), 0); // NT path: cold miss
    a.add(Reg::x(7), Reg::x(7), Reg::x(5));
    a.jmp(join);
    a.bind(then_).unwrap();
    a.ld(Reg::x(5), Reg::x(6), 16384); // T path: different cold miss
    a.add(Reg::x(7), Reg::x(7), Reg::x(5));
    a.bind(join).unwrap();
    a.eosjmp();
    a.halt();
    let prog = a.assemble().unwrap();
    for config in [SimConfig::baseline(), SimConfig::paper()] {
        assert_equivalent(&prog, config, FUEL);
    }
}

#[test]
fn compiled_chase_workload_is_equivalent_on_all_backends() {
    let chase = pointer_chase_program(&ChaseParams { words: 1 << 12, iters: 256 });
    for backend in [Backend::Baseline, Backend::Sempe, Backend::Cte] {
        let cw = compile(&chase, backend).expect("compiles");
        let config = match backend {
            Backend::Sempe => SimConfig::paper(),
            _ => SimConfig::baseline(),
        };
        let (skipped, _) = assert_equivalent(cw.program(), config, FUEL);
        assert!(skipped > 0, "{backend}: the chase must skip");
    }
}

#[test]
fn secret_branching_workload_is_equivalent_under_sempe() {
    let src = r"
        secret key = 0b1011;
        var r = 1;
        var base = 7;
        var i = 0;
        var bit = 0;
        array tab[8] = {3, 5, 7, 11, 13, 17, 19, 23};
        while (i < 8) bound 9 {
            bit = (key >> i) & 1;
            if secret (bit) { r = (r * tab[i & 7]) % 1000003; }
            base = (base * base) % 1000003;
            i = i + 1;
        }
        output r;
    ";
    let prog = parse_wir(src).expect("parses").program;
    for backend in [Backend::Baseline, Backend::Sempe, Backend::Cte] {
        let cw = compile(&prog, backend).expect("compiles");
        let config = match backend {
            Backend::Sempe => SimConfig::paper(),
            _ => SimConfig::baseline(),
        };
        assert_equivalent(cw.program(), config, FUEL);
    }
}

/// `max_cycles` exhaustion mid-stall: the skip must clamp to the budget
/// and report the error at exactly the classic cycle with identical
/// statistics.
#[test]
fn cycle_budget_fires_identically_under_skip() {
    let prog = miss_chain_program(8);
    // A budget landing inside a quiescent miss window.
    for fuel in [40, 170, 333] {
        let skip = observe(&prog, SimConfig::baseline(), fuel);
        let classic = observe(&prog, SimConfig::baseline().with_classic_stepping(), fuel);
        assert_eq!(
            skip.result,
            Err(SimError::CyclesExhausted { max_cycles: fuel }),
            "budget {fuel} must exhaust"
        );
        assert_eq!(skip.result, classic.result);
        assert_eq!(skip.final_cycle_stats, classic.final_cycle_stats, "fuel {fuel}");
        assert_eq!(skip.final_cycle_stats.cycles, fuel, "error must fire at the budget cycle");
    }
}

/// The watchdog must fire at exactly the classic cycle even when the
/// quiescent span extends past its deadline — a skip may not jump over
/// the bound.
#[test]
fn watchdog_fires_identically_under_skip() {
    let prog = miss_chain_program(4);
    // Far smaller than the ~165-cycle memory round trip, so the watchdog
    // deadline lands inside a genuine stall window.
    let mut config = SimConfig::baseline();
    config.watchdog_cycles = 40;
    let skip = observe(&prog, config, FUEL);
    let classic = observe(&prog, config.with_classic_stepping(), FUEL);
    assert!(
        matches!(skip.result, Err(SimError::Watchdog { .. })),
        "expected a watchdog trip, got {:?}",
        skip.result
    );
    assert_eq!(skip.result, classic.result, "watchdog cycle/pc context must match");
    assert_eq!(skip.final_cycle_stats, classic.final_cycle_stats);
}

/// A wedged machine (fetch parked on a bad PC with nothing in flight)
/// has no next event at all: the skip must jump straight to the watchdog
/// deadline, not hang, and report the identical error.
#[test]
fn wedged_machine_skips_to_the_watchdog() {
    // Jump into unmapped space: fetch parks on BadPc forever and no
    // squash can come.
    let mut a = Asm::new();
    a.jr(Reg::X0, 0x9_0000);
    let prog = a.assemble().unwrap();
    let mut config = SimConfig::baseline();
    config.watchdog_cycles = 500;
    let skip = observe(&prog, config, FUEL);
    let classic = observe(&prog, config.with_classic_stepping(), FUEL);
    assert!(matches!(skip.result, Err(SimError::Watchdog { .. })), "got {:?}", skip.result);
    assert_eq!(skip.result, classic.result);
    assert!(skip.skipped > 0, "the wedge must be fast-forwarded, not ticked through");
}

/// Divider-bound and branchy programs keep the ready lists busy; the
/// skip must stay out of the way and still agree.
#[test]
fn compute_dense_program_is_equivalent() {
    let mut a = Asm::new();
    let top = a.label("top");
    a.movi(Reg::x(3), 97);
    a.movi(Reg::x(4), 13);
    a.movi(Reg::x(5), 40);
    a.bind(top).unwrap();
    a.div(Reg::x(6), Reg::x(3), Reg::x(4));
    a.mul(Reg::x(3), Reg::x(6), Reg::x(4));
    a.addi(Reg::x(3), Reg::x(3), 101);
    a.addi(Reg::x(5), Reg::x(5), -1);
    a.bne(Reg::x(5), Reg::X0, top);
    a.halt();
    let prog = a.assemble().unwrap();
    assert_equivalent(&prog, SimConfig::baseline(), FUEL);
}

/// Checkpoint/fork composes with skipping: a restored run re-skips and
/// still reproduces the cold run bit for bit.
#[test]
fn fork_and_skip_compose() {
    let prog = miss_chain_program(12);
    let config = SimConfig::baseline().with_trace();
    let mut cold = Simulator::new(&prog, config).unwrap();
    let cp = cold.checkpoint().unwrap();
    let cold_res = cold.run(FUEL).unwrap();
    let cold_trace = cold.trace().clone();
    let (cold_skipped, _) = cold.skip_counters();
    assert!(cold_skipped > 0);

    let mut forked = Simulator::from_checkpoint(&cp);
    let forked_res = forked.run(FUEL).unwrap();
    assert_eq!(forked_res.stats, cold_res.stats);
    assert_eq!(first_divergence(&cold_trace, forked.trace(), Strictness::Full), None);
    assert_eq!(forked.skip_counters().0, cold_skipped, "same machine, same skips");
}
