//! Security tests: the observation-trace formulation of the paper's
//! claim (§IV-A). Under the unprotected baseline, an attacker observing
//! timing, committed PCs, memory addresses, cache behavior or predictor
//! updates can distinguish secret values. Under SeMPE, every one of those
//! channels is silent.

use sempe_core::analysis::{first_divergence, Strictness};
use sempe_core::trace::TraceEvent;
use sempe_isa::asm::Asm;
use sempe_isa::program::Program;
use sempe_isa::reg::Reg;
use sempe_sim::{SimConfig, Simulator};

const FUEL: u64 = 4_000_000;

/// The classic leaky kernel: if (secret) { long path } else { short path },
/// iterated so steady-state behavior dominates cold-cache effects (the
/// paper's microbenchmarks loop for the same reason). The two paths differ
/// in instruction count, memory behavior and branch structure — every
/// channel fires.
fn asymmetric_kernel(secret: u64) -> Program {
    let mut a = Asm::new();
    let buf = a.zero_data(1024);
    let base = Reg::x(29);
    a.movi(base, buf as i64);
    a.movi(Reg::x(28), secret as i64);
    a.movi(Reg::x(26), 25); // outer iterations
    let outer_top = a.label("outer_top");
    let outer_done = a.label("outer_done");
    a.bind(outer_top).unwrap();
    a.beq(Reg::x(26), Reg::X0, outer_done);
    {
        let then_ = a.fresh_label("then");
        let join = a.fresh_label("join");
        a.sbne(Reg::x(28), Reg::X0, then_);
        // NT path (secret == 0): short.
        a.movi(Reg::x(3), 3);
        a.jmp(join);
        a.bind(then_).unwrap();
        // T path (secret == 1): long, with a loop and stores.
        a.movi(Reg::x(3), 0);
        a.movi(Reg::x(4), 16);
        let top = a.fresh_label("top");
        let done = a.fresh_label("done");
        a.bind(top).unwrap();
        a.beq(Reg::x(4), Reg::X0, done);
        a.add(Reg::x(3), Reg::x(3), Reg::x(4));
        a.slli(Reg::x(5), Reg::x(4), 3);
        a.add(Reg::x(5), Reg::x(5), base);
        a.st(Reg::x(5), Reg::x(3), 0);
        a.addi(Reg::x(4), Reg::x(4), -1);
        a.jmp(top);
        a.bind(done).unwrap();
        a.bind(join).unwrap();
        a.eosjmp();
    }
    a.addi(Reg::x(26), Reg::x(26), -1);
    a.jmp(outer_top);
    a.bind(outer_done).unwrap();
    a.halt();
    a.assemble().unwrap()
}

fn run_traced(prog: &Program, config: SimConfig) -> (u64, sempe_core::ObservationTrace) {
    let mut sim = Simulator::new(prog, config.with_trace()).expect("sim builds");
    let res = sim.run(FUEL).expect("halts");
    (res.cycles(), sim.trace().clone())
}

#[test]
fn baseline_leaks_timing() {
    let (c0, _) = run_traced(&asymmetric_kernel(0), SimConfig::baseline());
    let (c1, _) = run_traced(&asymmetric_kernel(1), SimConfig::baseline());
    assert_ne!(c0, c1, "the baseline is supposed to leak through timing");
    assert!(c1 > c0, "the long path must take longer on the baseline");
}

#[test]
fn baseline_leaks_through_the_event_stream() {
    let (_, t0) = run_traced(&asymmetric_kernel(0), SimConfig::baseline());
    let (_, t1) = run_traced(&asymmetric_kernel(1), SimConfig::baseline());
    let div = first_divergence(&t0, &t1, Strictness::EventsOnly);
    assert!(div.is_some(), "baseline event streams must differ across secrets");
}

#[test]
fn sempe_closes_the_timing_channel() {
    let (c0, _) = run_traced(&asymmetric_kernel(0), SimConfig::paper());
    let (c1, _) = run_traced(&asymmetric_kernel(1), SimConfig::paper());
    assert_eq!(c0, c1, "SeMPE cycle counts must be secret-independent");
}

#[test]
fn sempe_traces_are_fully_indistinguishable() {
    let (_, t0) = run_traced(&asymmetric_kernel(0), SimConfig::paper());
    let (_, t1) = run_traced(&asymmetric_kernel(1), SimConfig::paper());
    if let Some(d) = first_divergence(&t0, &t1, Strictness::Full) {
        panic!("SeMPE traces diverge: {d}");
    }
    assert!(!t0.is_empty(), "the trace must actually contain events");
}

#[test]
fn sempe_removes_the_branch_predictor_channel() {
    // The sJMP lives at a known PC; no BpredUpdate event may reference it.
    let prog = asymmetric_kernel(1);
    // Find the sJMP address from the decoded program.
    let decoded = prog.decoded(sempe_isa::DecodeMode::Sempe).unwrap();
    let sjmp_pc = decoded
        .iter()
        .find(|(_, i)| i.is_sjmp())
        .map(|(pc, _)| pc)
        .expect("kernel contains an sJMP");
    let (_, trace) = run_traced(&prog, SimConfig::paper());
    let touched = trace.events().any(|e| {
        matches!(e,
        TraceEvent::BpredUpdate { pc, .. } if *pc == sjmp_pc)
    });
    assert!(!touched, "secure branches must never update the predictor");

    // The same branch in baseline mode *does* train the predictor.
    let (_, base_trace) = run_traced(&prog, SimConfig::baseline());
    let base_touched = base_trace.events().any(|e| {
        matches!(e,
        TraceEvent::BpredUpdate { pc, .. } if *pc == sjmp_pc)
    });
    assert!(base_touched, "the baseline trains on the same branch");
}

#[test]
fn sempe_indistinguishability_holds_across_many_secret_values() {
    // Multi-bit secret: a chain of secure regions keyed off each bit.
    fn kernel(secret: u64) -> Program {
        let mut a = Asm::new();
        a.movi(Reg::x(28), secret as i64);
        a.movi(Reg::x(3), 0);
        for bit in 0..4 {
            let then_ = a.fresh_label("then");
            let join = a.fresh_label("join");
            a.srli(Reg::x(27), Reg::x(28), bit);
            a.andi(Reg::x(27), Reg::x(27), 1);
            a.sbne(Reg::x(27), Reg::X0, then_);
            a.addi(Reg::x(3), Reg::x(3), 1);
            a.jmp(join);
            a.bind(then_).unwrap();
            a.slli(Reg::x(3), Reg::x(3), 1);
            a.addi(Reg::x(3), Reg::x(3), 5);
            a.bind(join).unwrap();
            a.eosjmp();
        }
        a.halt();
        a.assemble().unwrap()
    }
    let traces: Vec<_> = (0..16u64).map(|s| run_traced(&kernel(s), SimConfig::paper()).1).collect();
    if let Err((i, j, d)) = sempe_core::analysis::all_indistinguishable(&traces) {
        panic!("secrets {i} and {j} are distinguishable: {d}");
    }
}

#[test]
fn insecure_merge_ablation_reopens_the_timing_channel() {
    // With constant-time merge disabled, the scratchpad read traffic at
    // region exit depends on the outcome — a timing channel.
    let mut cfg = SimConfig::paper();
    cfg.sempe.constant_time_merge = false;
    let mut c = Vec::new();
    for secret in [0u64, 1] {
        let prog = asymmetric_kernel(secret);
        let mut sim = Simulator::new(&prog, cfg).unwrap();
        c.push(sim.run(FUEL).unwrap().cycles());
    }
    assert_ne!(c[0], c[1], "the ablation must leak (that is its point)");
}

#[test]
fn nested_secure_regions_stay_indistinguishable() {
    fn kernel(s1: u64, s2: u64) -> Program {
        let mut a = Asm::new();
        a.movi(Reg::x(28), s1 as i64);
        a.movi(Reg::x(27), s2 as i64);
        let outer_then = a.label("ot");
        let outer_join = a.label("oj");
        let inner_then = a.label("it");
        let inner_join = a.label("ij");
        a.sbne(Reg::x(28), Reg::X0, outer_then);
        // Outer NT: contains the inner region.
        a.sbne(Reg::x(27), Reg::X0, inner_then);
        a.movi(Reg::x(3), 30);
        a.jmp(inner_join);
        a.bind(inner_then).unwrap();
        a.movi(Reg::x(3), 20);
        a.bind(inner_join).unwrap();
        a.eosjmp();
        a.jmp(outer_join);
        a.bind(outer_then).unwrap();
        a.movi(Reg::x(3), 10);
        a.bind(outer_join).unwrap();
        a.eosjmp();
        a.halt();
        a.assemble().unwrap()
    }
    let combos = [(0u64, 0u64), (0, 1), (1, 0), (1, 1)];
    let traces: Vec<_> =
        combos.iter().map(|&(a, b)| run_traced(&kernel(a, b), SimConfig::paper()).1).collect();
    if let Err((i, j, d)) = sempe_core::analysis::all_indistinguishable(&traces) {
        panic!("combos {:?} vs {:?} distinguishable: {d}", combos[i], combos[j]);
    }
    // Sanity: the baseline version of the same kernel leaks.
    let base: Vec<_> =
        combos.iter().map(|&(a, b)| run_traced(&kernel(a, b), SimConfig::baseline()).1).collect();
    assert!(
        sempe_core::analysis::all_indistinguishable(&base).is_err(),
        "baseline nested kernel should be distinguishable"
    );
}

#[test]
fn sempe_overhead_is_near_the_sum_of_paths() {
    // For a balanced two-path region of substantial size, SeMPE should
    // cost roughly the sum of both paths (≈2× one path) plus bounded
    // drain/spill overhead — and never less than the baseline.
    fn kernel(secret: u64, body: usize) -> Program {
        let mut a = Asm::new();
        a.movi(Reg::x(28), secret as i64);
        let then_ = a.label("then");
        let join = a.label("join");
        a.sbne(Reg::x(28), Reg::X0, then_);
        for i in 0..body {
            a.addi(Reg::x(3), Reg::x(3), i as i64);
        }
        a.jmp(join);
        a.bind(then_).unwrap();
        for i in 0..body {
            a.addi(Reg::x(4), Reg::x(4), i as i64);
        }
        a.bind(join).unwrap();
        a.eosjmp();
        a.halt();
        a.assemble().unwrap()
    }
    let body = 600;
    let base = {
        let mut sim = Simulator::new(&kernel(0, body), SimConfig::baseline()).unwrap();
        sim.run(FUEL).unwrap().cycles()
    };
    let sempe = {
        let mut sim = Simulator::new(&kernel(0, body), SimConfig::paper()).unwrap();
        sim.run(FUEL).unwrap().cycles()
    };
    let ratio = sempe as f64 / base as f64;
    assert!(ratio > 1.2, "SeMPE must cost more than the baseline (ratio {ratio:.2})");
    assert!(
        ratio < 4.0,
        "SeMPE overhead for one balanced region should be near 2x, got {ratio:.2}x"
    );
}
