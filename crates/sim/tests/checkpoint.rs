//! Checkpoint/fork golden tests: a run restored from a checkpoint must
//! be **bit-for-bit identical** — cycles, committed count, full
//! statistics, outputs, and the `Strictness::Full` observation trace —
//! to a cold run of a freshly built simulator, on all three backends.
//!
//! This is the invariant the service's fork server (attack calibration,
//! sweeps, the `batch` op) and the `batch_throughput` bench rest on.

use sempe_compile::{compile, parse_wir, Backend, CompiledWorkload};
use sempe_core::{first_divergence, Strictness};
use sempe_sim::{SimConfig, Simulator};

const FUEL: u64 = 50_000_000;

/// A workload with secret-dependent control flow, arrays, and a loop —
/// enough to exercise caches, the predictor, and (under SeMPE) secure
/// regions.
const MODEXP: &str = r"
    secret key = 0b1011;
    var r = 1;
    var base = 7;
    var i = 0;
    var bit = 0;
    array tab[4] = {3, 5, 7, 11};
    while (i < 4) bound 5 {
        bit = (key >> i) & 1;
        if secret (bit) { r = (r * base) % 1000003; }
        base = (base * tab[i]) % 1000003;
        i = i + 1;
    }
    output r;
";

fn backends() -> [(Backend, SimConfig); 3] {
    [
        (Backend::Baseline, SimConfig::baseline().with_trace()),
        (Backend::Sempe, SimConfig::paper().with_trace()),
        (Backend::Cte, SimConfig::baseline().with_trace()),
    ]
}

fn compile_modexp(backend: Backend) -> CompiledWorkload {
    let parsed = parse_wir(MODEXP).expect("parses");
    compile(&parsed.program, backend).expect("compiles")
}

struct Facts {
    cycles: u64,
    committed: u64,
    squashes: u64,
    drain_stalls: u64,
    forwards: u64,
    outputs: Vec<u64>,
}

fn facts(sim: &mut Simulator, cw: &CompiledWorkload) -> Facts {
    let res = sim.run(FUEL).expect("halts");
    let s = res.stats;
    Facts {
        cycles: s.cycles,
        committed: s.committed,
        squashes: s.squashes,
        drain_stalls: s.drain_stall_cycles,
        forwards: s.load_forwards,
        outputs: cw.read_outputs(sim.mem()),
    }
}

fn assert_identical(cold: &Facts, forked: &Facts, what: &str) {
    assert_eq!(cold.cycles, forked.cycles, "{what}: cycle drift");
    assert_eq!(cold.committed, forked.committed, "{what}: committed drift");
    assert_eq!(cold.squashes, forked.squashes, "{what}: squash drift");
    assert_eq!(cold.drain_stalls, forked.drain_stalls, "{what}: drain drift");
    assert_eq!(cold.forwards, forked.forwards, "{what}: forwarding drift");
    assert_eq!(cold.outputs, forked.outputs, "{what}: output drift");
}

#[test]
fn restored_run_is_bit_identical_to_cold_run_on_all_backends() {
    for (backend, config) in backends() {
        let cw = compile_modexp(backend);
        // Cold reference.
        let mut cold_sim = Simulator::new(cw.program(), config).expect("builds");
        let cold = facts(&mut cold_sim, &cw);
        let cold_trace = cold_sim.trace().clone();

        // Fork server: checkpoint at the quiesced post-load point, then
        // run / restore / run again — both forked runs must match cold.
        let mut sim = Simulator::new(cw.program(), config).expect("builds");
        let cp = sim.checkpoint().expect("quiesced right after construction");
        for round in 0..3 {
            let what = format!("{backend:?} round {round}");
            let forked = facts(&mut sim, &cw);
            assert_identical(&cold, &forked, &what);
            assert_eq!(
                first_divergence(&cold_trace, sim.trace(), Strictness::Full),
                None,
                "{what}: observation traces must be Full-identical"
            );
            sim.restore_from(&cp);
        }

        // And a simulator hydrated on a different "worker" from the same
        // checkpoint behaves identically too.
        let mut other = Simulator::from_checkpoint(&cp);
        let forked = facts(&mut other, &cw);
        assert_identical(&cold, &forked, &format!("{backend:?} from_checkpoint"));
        assert_eq!(first_divergence(&cold_trace, other.trace(), Strictness::Full), None);
    }
}

#[test]
fn forked_trial_with_patched_secret_matches_cold_build_of_that_secret() {
    // The attack-calibration pattern: one compile + one checkpoint, then
    // per candidate restore + poke the secret's data slot. Must equal a
    // cold compile-with-that-initializer run bit for bit (possible at
    // all because scalar initializers live in the data image, not in an
    // instruction prologue).
    for (backend, config) in backends() {
        let parsed = parse_wir(MODEXP).expect("parses");
        let vid = parsed.secrets[0];
        let cw = compile(&parsed.program, backend).expect("compiles");
        let mut sim = Simulator::new(cw.program(), config).expect("builds");
        let cp = sim.checkpoint().expect("quiesced");
        for candidate in [0u64, 1, 2, 0b1011, 0b1111] {
            sim.restore_from(&cp);
            sim.mem_mut().write_u64(cw.var_addr(vid), candidate);
            let forked = facts(&mut sim, &cw);
            let forked_trace = sim.trace().clone();

            let mut patched = parsed.program.clone();
            patched.set_var_init(vid, candidate);
            let cw2 = compile(&patched, backend).expect("compiles");
            assert_eq!(
                cw.program().code(),
                cw2.program().code(),
                "{backend:?}: code bytes must not depend on initializers"
            );
            let mut cold_sim = Simulator::new(cw2.program(), config).expect("builds");
            let cold = facts(&mut cold_sim, &cw2);
            assert_identical(&cold, &forked, &format!("{backend:?} candidate {candidate}"));
            assert_eq!(
                first_divergence(cold_sim.trace(), &forked_trace, Strictness::Full),
                None,
                "{backend:?} candidate {candidate}: trace drift"
            );
        }
    }
}

#[test]
fn checkpoint_restore_is_o_dirty_pages() {
    let cw = compile_modexp(Backend::Sempe);
    let mut sim = Simulator::new(cw.program(), SimConfig::paper()).expect("builds");
    let cp = sim.checkpoint().expect("quiesced");
    let baseline_pages = cp.mem_pages();
    assert!(baseline_pages > 0);
    sim.run(FUEL).expect("halts");
    let dirtied = sim.mem().dirty_page_count();
    assert!(dirtied > 0, "a run must dirty pages");
    assert!(
        dirtied <= baseline_pages + 4,
        "modexp touches a handful of pages, not the whole image ({dirtied} vs {baseline_pages})"
    );
    sim.restore_from(&cp);
    assert_eq!(sim.mem().dirty_page_count(), 0, "restore resynchronizes");
}

#[test]
fn checkpoint_mid_flight_is_rejected() {
    // Not every mid-run cycle has µops in flight (the front end can be
    // parked on a cold I-cache fill with an empty window — a checkpoint
    // there is legitimately valid), so scan the run and require that the
    // quiesce gate fires somewhere before HALT.
    let cw = compile_modexp(Backend::Baseline);
    let mut sim = Simulator::new(cw.program(), SimConfig::baseline()).expect("builds");
    let mut rejected = 0u32;
    for budget in (25..=5_000).step_by(25) {
        let done = sim.run(budget).is_ok();
        if let Err(err) = sim.checkpoint() {
            assert!(matches!(err, sempe_sim::SimError::NotQuiesced { .. }), "got {err:?}");
            rejected += 1;
        }
        if done {
            break;
        }
    }
    assert!(rejected > 0, "some mid-run point must have µops in flight");
    // After HALT the machine is quiesced again.
    assert!(sim.checkpoint().is_ok(), "halted machine must checkpoint");
}

#[test]
fn checkpoint_after_halt_resumes_nothing_but_restores_exactly() {
    // A post-run checkpoint captures a halted machine; restoring it
    // reproduces the halted state (stats included) — the general
    // contract, even though the fork server checkpoints pre-run.
    let cw = compile_modexp(Backend::Sempe);
    let mut sim = Simulator::new(cw.program(), SimConfig::paper()).expect("builds");
    let res = sim.run(FUEL).expect("halts");
    let cp = sim.checkpoint().expect("halted machine is quiesced");
    let restored = Simulator::from_checkpoint(&cp);
    assert_eq!(restored.stats().cycles, res.stats.cycles);
    assert_eq!(restored.stats().committed, res.stats.committed);
    assert_eq!(cw.read_outputs(restored.mem()), cw.read_outputs(sim.mem()));
}
