//! Failure injection: the documented exception behaviors of §III/§IV-E
//! and the simulator's own guard rails.

use sempe_core::SempeFault;
use sempe_isa::asm::Asm;
use sempe_isa::reg::Reg;
use sempe_sim::pipeline::SimError;
use sempe_sim::{SimConfig, Simulator};

/// Nesting deeper than the jbTable raises the paper's run-time exception
/// (§IV-E: "Recursion may be … made to trigger exception at run time").
#[test]
fn jbtable_overflow_raises_nesting_exception() {
    // Five nested secure branches on a 4-entry table.
    let mut a = Asm::new();
    let mut labels = Vec::new();
    for _ in 0..5 {
        let then_ = a.fresh_label("t");
        let join = a.fresh_label("j");
        a.sbne(Reg::X0, Reg::X0, then_); // never taken; NT path nests deeper
        labels.push((then_, join));
    }
    for (then_, join) in labels.into_iter().rev() {
        a.jmp(join);
        a.bind(then_).unwrap();
        a.bind(join).unwrap();
        a.eosjmp();
    }
    a.halt();
    let prog = a.assemble().unwrap();

    let mut config = SimConfig::paper();
    config.sempe.jbtable_entries = 4;
    let mut sim = Simulator::new(&prog, config).unwrap();
    let err = sim.run(10_000_000).unwrap_err();
    assert_eq!(err, SimError::Sempe(SempeFault::NestingOverflow { capacity: 4 }));

    // With a 30-entry table (the paper's provisioning) the same program
    // completes.
    let mut sim = Simulator::new(&prog, SimConfig::paper()).unwrap();
    assert!(sim.run(10_000_000).unwrap().halted);
}

/// A divide-by-zero on the architecturally wrong path still surfaces —
/// both paths execute, so the fault is reachable (§III).
#[test]
fn fault_on_wrong_path_is_reported_inside_secblock() {
    let mut a = Asm::new();
    let then_ = a.label("then");
    let join = a.label("join");
    a.movi(Reg::x(3), 1); // secret = 1: taken path is correct
    a.movi(Reg::x(4), 10);
    a.sbne(Reg::x(3), Reg::X0, then_);
    // NT path (architecturally wrong, still executed by SeMPE):
    a.div(Reg::x(5), Reg::x(4), Reg::X0); // divide by zero
    a.jmp(join);
    a.bind(then_).unwrap();
    a.addi(Reg::x(5), Reg::x(4), 1);
    a.bind(join).unwrap();
    a.eosjmp();
    a.halt();
    let prog = a.assemble().unwrap();

    // SeMPE: the wrong path executes and its fault is routed through the
    // SecBlock exception path.
    let mut sim = Simulator::new(&prog, SimConfig::paper()).unwrap();
    let err = sim.run(1_000_000).unwrap_err();
    assert!(matches!(err, SimError::Sempe(SempeFault::FaultInSecBlock { .. })), "got {err:?}");

    // Baseline: only the (correct) taken path runs, no fault at all.
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    assert!(sim.run(1_000_000).unwrap().halted);
    assert_eq!(sim.arch_reg(Reg::x(5)), 11);
}

/// A divide-by-zero outside any secure region is a plain execution fault.
#[test]
fn plain_divide_by_zero_faults() {
    let mut a = Asm::new();
    a.movi(Reg::x(3), 42);
    a.div(Reg::x(4), Reg::x(3), Reg::X0);
    a.halt();
    let prog = a.assemble().unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    let err = sim.run(1_000_000).unwrap_err();
    assert!(matches!(err, SimError::Exec(sempe_isa::ExecError::DivideByZero { .. })));
}

/// A wrong-path divide-by-zero that gets squashed must NOT fault: the
/// exception is only raised at commit.
#[test]
fn squashed_wrong_path_fault_is_harmless() {
    let mut a = Asm::new();
    let skip = a.label("skip");
    a.movi(Reg::x(3), 0);
    // A plain (predictable-eventually, but cold-mispredictable) branch:
    // x3 == 0 so the branch IS taken; the fall-through (wrong path on a
    // not-taken prediction) contains the div-by-zero.
    a.beq(Reg::x(3), Reg::X0, skip);
    a.div(Reg::x(4), Reg::x(3), Reg::X0); // wrong path only
    a.bind(skip).unwrap();
    a.movi(Reg::x(5), 77);
    a.halt();
    let prog = a.assemble().unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    let res = sim.run(1_000_000).unwrap();
    assert!(res.halted);
    assert_eq!(sim.arch_reg(Reg::x(5)), 77);
}

/// Exhausting the cycle budget reports cleanly.
#[test]
fn cycle_budget_exhaustion_reports() {
    let mut a = Asm::new();
    let top = a.label("top");
    a.bind(top).unwrap();
    a.jmp(top);
    let prog = a.assemble().unwrap();
    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    let err = sim.run(5_000).unwrap_err();
    assert_eq!(err, SimError::CyclesExhausted { max_cycles: 5_000 });
}

/// An eosJMP with no active secure region is a SeMPE fault on secure
/// hardware and a harmless NOP on legacy hardware.
#[test]
fn stray_eosjmp_faults_only_on_sempe() {
    let mut a = Asm::new();
    a.eosjmp();
    a.halt();
    let prog = a.assemble().unwrap();

    let mut sim = Simulator::new(&prog, SimConfig::paper()).unwrap();
    let err = sim.run(1_000_000).unwrap_err();
    assert_eq!(err, SimError::Sempe(SempeFault::EosWithoutRegion));

    let mut sim = Simulator::new(&prog, SimConfig::baseline()).unwrap();
    assert!(sim.run(1_000_000).unwrap().halted);
}

/// Error types render useful messages.
#[test]
fn sim_errors_display_context() {
    let e = SimError::CyclesExhausted { max_cycles: 9 };
    assert!(e.to_string().contains('9'));
    let e = SimError::Watchdog { cycle: 5, fetch_pc: 0x40, rob_head_pc: None };
    assert!(e.to_string().contains("0x40"));
}
