//! The load/store queues: 32+32 entries (Table II), with store-to-load
//! forwarding and conservative memory-dependence handling (a load waits
//! for every older store address before it may bypass them — no memory
//! dependence speculation, which keeps wrong-path behavior deterministic).

use sempe_isa::Addr;

use crate::skip::Wake;

/// One store-queue entry.
#[derive(Debug, Clone, Copy)]
pub struct StoreEntry {
    /// Identity (monotone, never reused).
    pub id: u64,
    /// Program-order sequence of the owning store µop.
    pub seq: u64,
    /// Resolved address (`None` until the AGU runs).
    pub addr: Option<Addr>,
    /// Data to write, valid when `addr` is `Some`.
    pub data: u64,
    /// Access width in bytes.
    pub width: u8,
}

/// Outcome of a load's store-queue scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadCheck {
    /// No older store conflicts: read memory/cache.
    Proceed,
    /// An exact-match older store supplies the value.
    Forward(u64),
    /// An older store's address is unknown, or a partial overlap exists:
    /// replay the load later.
    Wait,
}

/// The store queue plus a load-slot counter.
///
/// `stores` is kept in program (seq) order by construction: entries are
/// allocated at rename in program order, commit pops from the front, and
/// squash removes a suffix. [`Lsq::check_load`] exploits this to walk
/// the older-stores prefix youngest-first with no allocation or sort.
#[derive(Debug)]
pub struct Lsq {
    stores: Vec<StoreEntry>,
    sq_capacity: usize,
    lq_capacity: usize,
    loads_in_flight: usize,
    next_store_id: u64,
    /// Forwarding events (statistics).
    pub forwards: u64,
    /// Bumped on every store-queue mutation that could change a
    /// [`Lsq::check_load`] verdict. A load that got [`LoadCheck::Wait`]
    /// keeps waiting until this changes, so the replay machinery can skip
    /// re-checking against an unchanged queue.
    version: u64,
}

impl Lsq {
    /// Queues with the given capacities.
    #[must_use]
    pub fn new(lq_capacity: usize, sq_capacity: usize) -> Self {
        Lsq {
            stores: Vec::with_capacity(sq_capacity),
            sq_capacity,
            lq_capacity,
            loads_in_flight: 0,
            next_store_id: 0,
            forwards: 0,
            version: 0,
        }
    }

    /// Store-queue mutation counter (see the field docs).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Next-event report for loads parked on a [`LoadCheck::Wait`]
    /// verdict issued at store-queue version `version`: their verdict
    /// can only change when the queue changes, so an unchanged queue is
    /// [`Wake::Idle`] (the mutation that changes it — a store resolve,
    /// commit, or squash — is itself driven by a completion or commit
    /// event that already ends any skip). The LSQ holds no timers.
    #[must_use]
    pub fn wake_since(&self, version: u64) -> Wake {
        if self.version == version {
            Wake::Idle
        } else {
            Wake::Now
        }
    }

    /// No stores queued and no loads in flight?
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.stores.is_empty() && self.loads_in_flight == 0
    }

    /// Reset to the pristine state of `Lsq::new(lq, sq)`, keeping the
    /// store vector's allocation. The `forwards` statistic is also
    /// zeroed; a checkpoint restore re-seeds it from the checkpoint.
    pub fn reset(&mut self, lq_capacity: usize, sq_capacity: usize) {
        self.stores.clear();
        self.sq_capacity = sq_capacity;
        self.lq_capacity = lq_capacity;
        self.loads_in_flight = 0;
        self.next_store_id = 0;
        self.forwards = 0;
        self.version = 0;
    }

    /// Free store-queue slots?
    #[must_use]
    pub fn can_alloc_store(&self) -> bool {
        self.stores.len() < self.sq_capacity
    }

    /// Free load-queue slots?
    #[must_use]
    pub fn can_alloc_load(&self) -> bool {
        self.loads_in_flight < self.lq_capacity
    }

    /// Occupancy of the store queue.
    #[must_use]
    pub fn store_count(&self) -> usize {
        self.stores.len()
    }

    /// Allocate a store entry at rename. Returns its id.
    ///
    /// # Panics
    ///
    /// Panics when the queue is full; gate on
    /// [`Lsq::can_alloc_store`] first.
    pub fn alloc_store(&mut self, seq: u64) -> u64 {
        assert!(self.can_alloc_store(), "store queue overflow");
        debug_assert!(
            self.stores.last().is_none_or(|s| s.seq < seq),
            "stores must be allocated in program order"
        );
        let id = self.next_store_id;
        self.next_store_id += 1;
        self.stores.push(StoreEntry { id, seq, addr: None, data: 0, width: 0 });
        self.version += 1;
        id
    }

    /// Allocate a load slot at rename.
    ///
    /// # Panics
    ///
    /// Panics when the queue is full; gate on [`Lsq::can_alloc_load`].
    pub fn alloc_load(&mut self) {
        assert!(self.can_alloc_load(), "load queue overflow");
        self.loads_in_flight += 1;
    }

    /// Release a load slot (completion or squash).
    pub fn release_load(&mut self) {
        debug_assert!(self.loads_in_flight > 0);
        self.loads_in_flight = self.loads_in_flight.saturating_sub(1);
    }

    /// The store's AGU ran: record address and data.
    pub fn resolve_store(&mut self, id: u64, addr: Addr, data: u64, width: u8) {
        if let Some(s) = self.stores.iter_mut().find(|s| s.id == id) {
            s.addr = Some(addr);
            s.data = data;
            s.width = width;
            self.version += 1;
        }
    }

    /// Scan for a load at `seq` reading `[addr, addr+width)`.
    pub fn check_load(&mut self, seq: u64, addr: Addr, width: u8) -> LoadCheck {
        let lo = addr;
        let hi = addr + u64::from(width);
        // `stores` is seq-sorted, so the stores older than this load are
        // a prefix; walk it backwards (youngest-first, nearest writer
        // wins), skipping the younger suffix.
        for s in self.stores.iter().rev().skip_while(|s| s.seq >= seq) {
            match s.addr {
                None => return LoadCheck::Wait,
                Some(sa) => {
                    let slo = sa;
                    let shi = sa + u64::from(s.width);
                    let overlap = lo < shi && slo < hi;
                    if !overlap {
                        continue;
                    }
                    if sa == addr && s.width >= width {
                        self.forwards += 1;
                        let val = match width {
                            1 => s.data & 0xFF,
                            4 => s.data & 0xFFFF_FFFF,
                            _ => s.data,
                        };
                        return LoadCheck::Forward(val);
                    }
                    // Partial overlap: wait for the store to commit.
                    return LoadCheck::Wait;
                }
            }
        }
        LoadCheck::Proceed
    }

    /// Pop the store with `id` at commit (it must be the oldest).
    pub fn commit_store(&mut self, id: u64) -> Option<StoreEntry> {
        let pos = self.stores.iter().position(|s| s.id == id)?;
        debug_assert_eq!(pos, 0, "stores must commit in order");
        self.version += 1;
        Some(self.stores.remove(pos))
    }

    /// Squash: drop every store younger than `seq`.
    pub fn squash_younger(&mut self, seq: u64) {
        self.stores.retain(|s| s.seq <= seq);
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_from_exact_match() {
        let mut lsq = Lsq::new(4, 4);
        let id = lsq.alloc_store(10);
        lsq.resolve_store(id, 0x100, 0xAABB_CCDD_EEFF_1122, 8);
        assert_eq!(lsq.check_load(11, 0x100, 8), LoadCheck::Forward(0xAABB_CCDD_EEFF_1122));
        assert_eq!(lsq.check_load(11, 0x100, 4), LoadCheck::Forward(0xEEFF_1122));
        assert_eq!(lsq.check_load(11, 0x100, 1), LoadCheck::Forward(0x22));
        assert_eq!(lsq.forwards, 3);
    }

    #[test]
    fn younger_store_does_not_forward_to_older_load() {
        let mut lsq = Lsq::new(4, 4);
        let id = lsq.alloc_store(20);
        lsq.resolve_store(id, 0x100, 7, 8);
        assert_eq!(lsq.check_load(15, 0x100, 8), LoadCheck::Proceed);
    }

    #[test]
    fn unknown_older_address_blocks() {
        let mut lsq = Lsq::new(4, 4);
        let _id = lsq.alloc_store(10);
        assert_eq!(lsq.check_load(11, 0x500, 8), LoadCheck::Wait);
    }

    #[test]
    fn partial_overlap_blocks() {
        let mut lsq = Lsq::new(4, 4);
        let id = lsq.alloc_store(10);
        lsq.resolve_store(id, 0x100, 7, 4);
        // 8-byte load over a 4-byte store: partial.
        assert_eq!(lsq.check_load(11, 0x100, 8), LoadCheck::Wait);
        // Disjoint: fine.
        assert_eq!(lsq.check_load(11, 0x110, 8), LoadCheck::Proceed);
    }

    #[test]
    fn nearest_older_writer_wins() {
        let mut lsq = Lsq::new(4, 4);
        let a = lsq.alloc_store(10);
        lsq.resolve_store(a, 0x100, 1, 8);
        let b = lsq.alloc_store(12);
        lsq.resolve_store(b, 0x100, 2, 8);
        assert_eq!(lsq.check_load(13, 0x100, 8), LoadCheck::Forward(2));
        assert_eq!(lsq.check_load(11, 0x100, 8), LoadCheck::Forward(1));
    }

    #[test]
    fn commit_pops_in_order_and_squash_drops_younger() {
        let mut lsq = Lsq::new(4, 4);
        let a = lsq.alloc_store(10);
        let _b = lsq.alloc_store(12);
        let _c = lsq.alloc_store(14);
        lsq.squash_younger(12);
        assert_eq!(lsq.store_count(), 2);
        let popped = lsq.commit_store(a).unwrap();
        assert_eq!(popped.seq, 10);
        assert_eq!(lsq.store_count(), 1);
    }

    #[test]
    fn capacity_gates() {
        let mut lsq = Lsq::new(1, 1);
        assert!(lsq.can_alloc_load());
        lsq.alloc_load();
        assert!(!lsq.can_alloc_load());
        lsq.release_load();
        assert!(lsq.can_alloc_load());
        lsq.alloc_store(1);
        assert!(!lsq.can_alloc_store());
    }
}
