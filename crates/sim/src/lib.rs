//! # sempe-sim — a cycle-level out-of-order core with SeMPE support
//!
//! The evaluation substrate of the SeMPE reproduction: a Haswell-like
//! out-of-order pipeline configured per the paper's Table II (8-wide
//! front end, 192-entry ROB, 256+256 physical registers, 60+60 issue
//! buffers, 32+32 load/store queues, 12-wide retire, TAGE + ITTAGE
//! prediction, 16 KB IL1 / 32 KB DL1 / 256 KB L2 with stride and stream
//! prefetchers).
//!
//! The SeMPE mechanisms themselves (jump-back table, ArchRS snapshots,
//! scratchpad) come from [`sempe_core`]; this crate drives them from the
//! pipeline:
//!
//! * run the same binary with [`config::SecurityMode::Baseline`] and the
//!   front end decodes legacy-style — sJMP is a plain predicted branch
//!   (the vulnerable baseline);
//! * run it with [`config::SecurityMode::Sempe`] and secure branches
//!   execute **both paths**, not-taken first, with the three pipeline
//!   drains and scratchpad spills of Figure 6.
//!
//! ```
//! use sempe_isa::asm::Asm;
//! use sempe_isa::reg::abi;
//! use sempe_sim::{SimConfig, Simulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // if (secret) a1 = 1 else a1 = 2
//! let mut a = Asm::new();
//! let then_ = a.label("then");
//! let join = a.label("join");
//! a.movi(abi::A[0], 1);
//! a.sbne(abi::A[0], abi::ZERO, then_);
//! a.movi(abi::A[1], 2);
//! a.jmp(join);
//! a.bind(then_)?;
//! a.movi(abi::A[1], 1);
//! a.bind(join)?;
//! a.eosjmp();
//! a.halt();
//! let prog = a.assemble()?;
//!
//! let mut sim = Simulator::new(&prog, SimConfig::paper())?;
//! sim.run(1_000_000)?;
//! assert_eq!(sim.arch_reg(abi::A[1]), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bpred;
pub mod cache;
pub mod config;
pub mod lsq;
pub mod pipeline;
pub mod rename;
pub mod rob;
pub mod skip;
pub mod stats;
pub mod tier;

pub use config::{Roi, SecurityMode, SimConfig, Stepping};
pub use pipeline::{Checkpoint, HostProfile, SimError, Simulator, DEADLINE_QUANTUM};
pub use stats::{SimResult, SimStats};
