//! Next-event cycle skipping — the vocabulary type.
//!
//! Stall-dominated runs spend most of their simulated cycles in ticks
//! where *nothing architectural can change*: every stage is parked
//! waiting on a timer (a cache miss in flight, a scratchpad transfer, a
//! decode pipe) or on another stage. Walking all six stages through such
//! a cycle costs full per-cycle work for zero state change.
//!
//! The simulator therefore makes quiescence an explicit, auditable
//! property: every timed structure reports a [`Wake`] — *can you act
//! this cycle, and if not, when is the earliest cycle you could?* The
//! pipeline folds the reports with [`Wake::earliest`]; when the combined
//! answer is not [`Wake::Now`], `Simulator::run` fast-forwards the cycle
//! counter straight to the wake point (bounded by `max_cycles` and the
//! watchdog deadline), bulk-accounting the per-cycle counters the
//! skipped ticks would have incremented.
//!
//! Reporters (one per timed structure, each documented at its source):
//!
//! * `Rob::commit_wake` — is the head ready to retire?
//! * the completion min-heap — head event's cycle;
//! * `Lsq::wake_since` — did the store queue change since the waiting
//!   loads last checked?
//! * the issue queues — any ready (woken) entry?
//! * rename — drain timers, decode-ready cycle of the frontend head,
//!   structural hazards (via the same gate the rename stage itself
//!   uses);
//! * fetch — redirect/halt blocks, i-cache stall timer, queue pressure;
//! * `MemHierarchy::wake` and `SempeUnit::next_event_cycle` — both
//!   always idle, by contract: their timed effects are charged into the
//!   pipeline's own timers at access/commit time.
//!
//! Skipping is semantically invisible: cycles, statistics, outputs and
//! `Strictness::Full` observation traces are bit-for-bit identical to
//! classic 1-cycle stepping (select
//! [`Stepping::Classic`](crate::config::Stepping::Classic) to force the
//! latter). The equivalence is enforced by the golden cycle tables,
//! `tests/skip.rs`, and the fuzzer's skip differential. Skipping also
//! stays on inside the detailed portions of
//! [`Stepping::Tiered`](crate::config::Stepping::Tiered) runs — the two
//! fast-forwards compose (see [`crate::tier`]).

/// When a timed structure can next affect the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Nothing pending inside the structure: only an event elsewhere in
    /// the machine can change it. Never bounds a skip.
    Idle,
    /// The structure cannot act before this cycle (which must be in the
    /// reporter's future — stale timers report [`Wake::Idle`]).
    At(u64),
    /// The structure can act in the current cycle; skipping is illegal.
    Now,
}

impl Wake {
    /// Fold two reports: the machine may sleep only until the earliest
    /// wake, and not at all if anything can act now.
    #[must_use]
    pub fn earliest(self, other: Wake) -> Wake {
        match (self, other) {
            (Wake::Now, _) | (_, Wake::Now) => Wake::Now,
            (Wake::Idle, w) | (w, Wake::Idle) => w,
            (Wake::At(a), Wake::At(b)) => Wake::At(a.min(b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn earliest_folds_like_a_min_with_now_dominant() {
        assert_eq!(Wake::Idle.earliest(Wake::Idle), Wake::Idle);
        assert_eq!(Wake::Idle.earliest(Wake::At(7)), Wake::At(7));
        assert_eq!(Wake::At(9).earliest(Wake::At(7)), Wake::At(7));
        assert_eq!(Wake::At(7).earliest(Wake::At(9)), Wake::At(7));
        assert_eq!(Wake::Now.earliest(Wake::Idle), Wake::Now);
        assert_eq!(Wake::At(7).earliest(Wake::Now), Wake::Now);
    }
}
