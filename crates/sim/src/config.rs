//! Simulator configuration. [`SimConfig::paper`] reproduces Table II of
//! the SeMPE paper (a Haswell-like out-of-order core at 2 GHz).

use sempe_core::unit::SempeConfig;

/// How the run loop advances simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Stepping {
    /// Cycle-accurate with next-event fast-forward ("cycle skip"): stall
    /// spans in which no stage can act are jumped instead of ticked.
    /// Semantically invisible — cycles, statistics, outputs and
    /// observation traces are bit-for-bit identical to classic stepping
    /// (enforced by the golden cycle tables and the fuzzer's skip
    /// differential).
    #[default]
    Skip,
    /// Force classic 1-cycle stepping (disable the next-event skip).
    /// Exists for A/B throughput measurement and as an escape hatch,
    /// not for correctness.
    Classic,
    /// Tiered execution: instructions outside the region of interest
    /// (see [`Roi`]) execute functionally on the shared ISA semantics
    /// while *warming* the timed structures (caches, TAGE/ITTAGE/RAS,
    /// prefetchers); only the ROI runs on the detailed pipeline, with
    /// cycle skipping still applied there. [`crate::stats::SimStats::cycles`]
    /// then counts detailed cycles only; `roi_cycles` and `committed`
    /// remain comparable to a full detailed run (see `crate::tier` for
    /// the exactness contract and its documented divergence budget).
    Tiered,
}

impl Stepping {
    /// Stable lower-case name (used in wire protocols and reports).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Stepping::Skip => "skip",
            Stepping::Classic => "classic",
            Stepping::Tiered => "tiered",
        }
    }
}

/// What counts as the region of interest for `roi_cycles` accounting and
/// for [`Stepping::Tiered`]'s detailed/fast-forward boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Roi {
    /// Secure regions: the span from each outermost sJMP commit to the
    /// eosJMP commit that closes it. The natural choice under
    /// [`SecurityMode::Sempe`], where region boundaries are also the
    /// pipeline's drain points — which is what makes tiered ROI timing
    /// exact (the machine is architecturally quiesced at both ends).
    #[default]
    Regions,
    /// An explicit measurement window in committed instructions: the span
    /// from the commit of instruction `skip + 1` to the commit of
    /// instruction `skip + insts`. The only way to attribute ROI time
    /// under [`SecurityMode::Baseline`] (where no secure regions exist);
    /// under tiered stepping the window boundaries are not drain points,
    /// so window timing is a sampled-simulation estimate, not exact.
    Window {
        /// Committed instructions before the window opens.
        skip: u64,
        /// Committed instructions inside the window.
        insts: u64,
    },
}

/// Whether secure instructions are honoured or ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SecurityMode {
    /// Unprotected baseline: the front end decodes in legacy mode, so
    /// sJMP is a plain predicted branch and eosJMP a NOP.
    Baseline,
    /// SeMPE: sJMP executes both paths via the jump-back table, with
    /// ArchRS snapshots and the three pipeline drains.
    #[default]
    Sempe,
}

/// Core width/structure parameters (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// µops decoded per cycle.
    pub decode_width: usize,
    /// µops renamed/dispatched per cycle.
    pub rename_width: usize,
    /// µops issued per cycle (all classes combined).
    pub issue_width: usize,
    /// Loads issued per cycle.
    pub load_issue_width: usize,
    /// µops retired per cycle.
    pub retire_width: usize,
    /// Reorder-buffer capacity in µops.
    pub rob_entries: usize,
    /// Integer physical registers.
    pub int_phys_regs: usize,
    /// Floating-point physical registers.
    pub fp_phys_regs: usize,
    /// Integer issue-buffer entries.
    pub int_iq_entries: usize,
    /// Floating-point issue-buffer entries.
    pub fp_iq_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Fetch-to-rename queue depth (fetch buffer + decode queue).
    pub frontend_queue: usize,
    /// Cycles from mispredict detection to the first corrected fetch.
    pub mispredict_penalty: u64,
    /// Cycles from an eosJMP commit to the redirected fetch (front end is
    /// already warm, so this is cheaper than a mispredict).
    pub eos_redirect_penalty: u64,
}

impl CoreConfig {
    /// Table II core.
    #[must_use]
    pub const fn paper() -> Self {
        CoreConfig {
            fetch_width: 8,
            decode_width: 8,
            rename_width: 8,
            issue_width: 8,
            load_issue_width: 2,
            retire_width: 12,
            rob_entries: 192,
            int_phys_regs: 256,
            fp_phys_regs: 256,
            int_iq_entries: 60,
            fp_iq_entries: 60,
            lq_entries: 32,
            sq_entries: 32,
            frontend_queue: 32,
            mispredict_penalty: 5,
            eos_redirect_penalty: 3,
        }
    }
}

/// One cache's geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets.
    #[must_use]
    pub const fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// The memory hierarchy (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 instruction cache: 16 KB, 2-way.
    pub il1: CacheConfig,
    /// L1 data cache: 32 KB, 2-way.
    pub dl1: CacheConfig,
    /// Unified L2: 256 KB, 2-way.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Enable the L1 stride prefetcher.
    pub stride_prefetch: bool,
    /// Enable the L2 stream prefetcher.
    pub stream_prefetch: bool,
}

impl MemConfig {
    /// Table II hierarchy.
    #[must_use]
    pub const fn paper() -> Self {
        MemConfig {
            il1: CacheConfig { size_bytes: 16 * 1024, ways: 2, line_bytes: 64, hit_latency: 1 },
            dl1: CacheConfig { size_bytes: 32 * 1024, ways: 2, line_bytes: 64, hit_latency: 3 },
            l2: CacheConfig { size_bytes: 256 * 1024, ways: 2, line_bytes: 64, hit_latency: 12 },
            mem_latency: 150,
            stride_prefetch: true,
            stream_prefetch: true,
        }
    }
}

/// Functional-unit latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Simple integer ALU ops.
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide.
    pub div: u64,
    /// FP add/sub.
    pub fp_add: u64,
    /// FP multiply.
    pub fp_mul: u64,
    /// FP divide.
    pub fp_div: u64,
    /// Address generation for loads/stores.
    pub agu: u64,
    /// Branch condition evaluation.
    pub branch: u64,
}

impl LatencyConfig {
    /// Haswell-like latencies.
    #[must_use]
    pub const fn paper() -> Self {
        LatencyConfig {
            alu: 1,
            mul: 3,
            div: 20,
            fp_add: 3,
            fp_mul: 5,
            fp_div: 14,
            agu: 1,
            branch: 1,
        }
    }
}

/// Branch-predictor sizing (Table II: 31 KB TAGE, 6 KB ITTAGE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpredConfig {
    /// log2 of bimodal-table entries.
    pub bimodal_bits: usize,
    /// log2 of entries in each tagged TAGE table.
    pub tage_table_bits: usize,
    /// Geometric history lengths of the tagged tables.
    pub tage_hist_lens: [usize; 4],
    /// Tag width in the tagged tables.
    pub tage_tag_bits: usize,
    /// log2 of entries in each tagged ITTAGE table.
    pub ittage_table_bits: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
}

impl BpredConfig {
    /// Approximates the paper's 31 KB TAGE + 6 KB ITTAGE budget.
    ///
    /// Sizing: bimodal 2^13 × 2 b = 2 KB; four tagged tables of 2^11
    /// entries × (10-bit tag + 3-bit ctr + 2-bit u) ≈ 15 b × 2048 × 4 ≈
    /// 15 KB; history/management overheads round the budget to the paper's
    /// order. ITTAGE: two tagged tables of 2^9 entries × (tag + 64-bit
    /// target) ≈ 6 KB.
    #[must_use]
    pub const fn paper() -> Self {
        BpredConfig {
            bimodal_bits: 13,
            tage_table_bits: 11,
            tage_hist_lens: [8, 16, 32, 64],
            tage_tag_bits: 10,
            ittage_table_bits: 9,
            ras_depth: 16,
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Honour or ignore secure instructions.
    pub mode: SecurityMode,
    /// Core widths and structures.
    pub core: CoreConfig,
    /// Cache hierarchy.
    pub mem: MemConfig,
    /// Functional-unit latencies.
    pub lat: LatencyConfig,
    /// Branch predictors.
    pub bpred: BpredConfig,
    /// SeMPE mechanism parameters (jbTable, SPM, drains).
    pub sempe: SempeConfig,
    /// Record an attacker observation trace (costs time and memory; meant
    /// for the security tests, not the big sweeps).
    pub record_trace: bool,
    /// Abort if no instruction commits for this many cycles (deadlock
    /// watchdog).
    pub watchdog_cycles: u64,
    /// How the run loop advances time: cycle-skip (default), classic
    /// 1-cycle stepping, or tiered fast-forward (see [`Stepping`]).
    pub stepping: Stepping,
    /// What counts as the region of interest (see [`Roi`]). Drives
    /// `roi_cycles` accounting in every stepping mode and the
    /// detailed/fast-forward boundary under [`Stepping::Tiered`].
    pub roi: Roi,
}

impl SimConfig {
    /// The paper's Table II configuration in SeMPE mode.
    #[must_use]
    pub fn paper() -> Self {
        SimConfig {
            mode: SecurityMode::Sempe,
            core: CoreConfig::paper(),
            mem: MemConfig::paper(),
            lat: LatencyConfig::paper(),
            bpred: BpredConfig::paper(),
            sempe: SempeConfig::paper(),
            record_trace: false,
            watchdog_cycles: 100_000,
            stepping: Stepping::Skip,
            roi: Roi::Regions,
        }
    }

    /// The unprotected baseline (same core, legacy decode).
    #[must_use]
    pub fn baseline() -> Self {
        SimConfig { mode: SecurityMode::Baseline, ..Self::paper() }
    }

    /// Enable observation-trace recording.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Select a stepping mode (classic / skip / tiered).
    #[must_use]
    pub fn with_stepping(mut self, stepping: Stepping) -> Self {
        self.stepping = stepping;
        self
    }

    /// Force classic 1-cycle stepping (disable cycle skipping).
    #[must_use]
    pub fn with_classic_stepping(self) -> Self {
        self.with_stepping(Stepping::Classic)
    }

    /// Enable tiered execution (functional fast-forward outside the ROI).
    #[must_use]
    pub fn with_tiered(self) -> Self {
        self.with_stepping(Stepping::Tiered)
    }

    /// Select a region-of-interest policy.
    #[must_use]
    pub fn with_roi(mut self, roi: Roi) -> Self {
        self.roi = roi;
        self
    }

    /// A deterministic digest of the complete configuration, for
    /// content-addressed result caching: two simulations of the same
    /// binary agree cycle-for-cycle whenever their config digests agree.
    ///
    /// Every field of every sub-struct is a plain scalar, so the derived
    /// `Debug` representation is a faithful serialization; hashing it
    /// keeps the digest automatically in sync as fields are added.
    #[must_use]
    pub fn digest(&self) -> u64 {
        sempe_core::hash::fnv1a(format!("{self:?}").as_bytes())
    }
}

impl SecurityMode {
    /// Stable lower-case name (used in wire protocols and reports).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            SecurityMode::Baseline => "baseline",
            SecurityMode::Sempe => "sempe",
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table_ii() {
        let c = SimConfig::paper();
        assert_eq!(c.core.fetch_width, 8);
        assert_eq!(c.core.retire_width, 12);
        assert_eq!(c.core.rob_entries, 192);
        assert_eq!(c.core.int_phys_regs, 256);
        assert_eq!(c.core.fp_phys_regs, 256);
        assert_eq!(c.core.int_iq_entries, 60);
        assert_eq!(c.core.lq_entries, 32);
        assert_eq!(c.core.sq_entries, 32);
        assert_eq!(c.mem.il1.size_bytes, 16 * 1024);
        assert_eq!(c.mem.dl1.size_bytes, 32 * 1024);
        assert_eq!(c.mem.l2.size_bytes, 256 * 1024);
        assert_eq!(c.mem.il1.ways, 2);
        assert_eq!(c.sempe.jbtable_entries, 30);
    }

    #[test]
    fn config_digest_is_stable_and_discriminating() {
        assert_eq!(SimConfig::paper().digest(), SimConfig::paper().digest());
        assert_ne!(SimConfig::paper().digest(), SimConfig::baseline().digest());
        let mut tweaked = SimConfig::paper();
        tweaked.core.rob_entries -= 1;
        assert_ne!(tweaked.digest(), SimConfig::paper().digest());
        assert_ne!(SimConfig::paper().with_trace().digest(), SimConfig::paper().digest());
        assert_ne!(
            SimConfig::paper().with_classic_stepping().digest(),
            SimConfig::paper().digest()
        );
        assert_ne!(SimConfig::paper().with_tiered().digest(), SimConfig::paper().digest());
        assert_ne!(
            SimConfig::paper().with_roi(Roi::Window { skip: 100, insts: 50 }).digest(),
            SimConfig::paper().digest()
        );
        assert_ne!(
            SimConfig::paper().with_roi(Roi::Window { skip: 100, insts: 50 }).digest(),
            SimConfig::paper().with_roi(Roi::Window { skip: 100, insts: 51 }).digest()
        );
    }

    #[test]
    fn stepping_names_are_stable() {
        assert_eq!(Stepping::Skip.name(), "skip");
        assert_eq!(Stepping::Classic.name(), "classic");
        assert_eq!(Stepping::Tiered.name(), "tiered");
    }

    #[test]
    fn cache_geometry_derives_sets() {
        let il1 = MemConfig::paper().il1;
        assert_eq!(il1.sets(), 16 * 1024 / (2 * 64));
        let l2 = MemConfig::paper().l2;
        assert_eq!(l2.sets(), 256 * 1024 / (2 * 64));
    }

    #[test]
    fn baseline_flips_only_the_mode() {
        let b = SimConfig::baseline();
        assert_eq!(b.mode, SecurityMode::Baseline);
        assert_eq!(b.core, SimConfig::paper().core);
    }
}
