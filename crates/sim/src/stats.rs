//! Aggregated simulation statistics.

use sempe_core::unit::SempeStats;

use crate::bpred::BpredStats;
use crate::cache::CacheStats;

/// Everything the harnesses report about a run.
///
/// Equality is field-for-field exact — the skip/classic and fork
/// differentials compare whole statistics blocks bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles simulated on the detailed pipeline. Under tiered stepping
    /// this excludes fast-forwarded gaps (which have no cycle cost);
    /// `roi_cycles` is the cross-mode comparable timing figure.
    pub cycles: u64,
    /// Instructions committed (architecturally retired). Under tiered
    /// stepping this includes fast-forwarded instructions, so it matches
    /// a full detailed run.
    pub committed: u64,
    /// Cycles spent inside the region of interest (see
    /// [`crate::config::Roi`]): outermost-secure-region spans by default,
    /// or an explicit committed-instruction window. Accounted identically
    /// in every stepping mode; the tiered exactness contract is stated in
    /// terms of this counter.
    pub roi_cycles: u64,
    /// Instructions executed by the functional fast-forward engine
    /// (a subset of `committed`; zero outside tiered stepping).
    pub ff_committed: u64,
    /// Instructions committed while a secure region was active.
    pub secure_committed: u64,
    /// Instructions fetched (including wrong-path).
    pub fetched: u64,
    /// µops renamed/dispatched.
    pub renamed: u64,
    /// µops issued to functional units.
    pub issued: u64,
    /// Loads satisfied by store-queue forwarding.
    pub load_forwards: u64,
    /// Load replays due to unresolved older stores.
    pub load_replays: u64,
    /// Pipeline squashes (mispredict recoveries).
    pub squashes: u64,
    /// Cycles the rename stage spent blocked on SeMPE drains/spills.
    pub drain_stall_cycles: u64,
    /// Instruction-cache counters.
    pub il1: CacheStats,
    /// Data-cache counters.
    pub dl1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// Branch-predictor counters.
    pub bpred: BpredStats,
    /// SeMPE mechanism counters.
    pub sempe: SempeStats,
}

impl SimStats {
    /// Committed instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Cycles per committed instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.cycles as f64 / self.committed as f64
        }
    }

    /// Fraction of committed instructions inside secure regions.
    #[must_use]
    pub fn secure_fraction(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.secure_committed as f64 / self.committed as f64
        }
    }

    /// A gem5-style multi-line statistics report, for harness output and
    /// debugging.
    #[must_use]
    pub fn report(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        let mut row = |k: &str, v: String| {
            let _ = writeln!(s, "{k:32} {v}");
        };
        row("sim.cycles", self.cycles.to_string());
        row("sim.committed_insts", self.committed.to_string());
        row("sim.roi_cycles", self.roi_cycles.to_string());
        row("sim.ff_committed", self.ff_committed.to_string());
        row("sim.ipc", format!("{:.3}", self.ipc()));
        row("sim.secure_fraction", format!("{:.3}", self.secure_fraction()));
        row("frontend.fetched", self.fetched.to_string());
        row("backend.renamed", self.renamed.to_string());
        row("backend.issued", self.issued.to_string());
        row("backend.squashes", self.squashes.to_string());
        row("lsq.forwards", self.load_forwards.to_string());
        row("lsq.replays", self.load_replays.to_string());
        row(
            "bpred.cond_mispredict_rate",
            format!(
                "{:.4} ({}/{})",
                self.bpred.cond_mispredict_rate(),
                self.bpred.cond_mispredicts,
                self.bpred.cond_predictions
            ),
        );
        for (name, c) in [("il1", self.il1), ("dl1", self.dl1), ("l2", self.l2)] {
            row(
                &format!("cache.{name}.miss_rate"),
                format!("{:.4} ({}/{})", c.miss_rate(), c.misses, c.accesses),
            );
            row(&format!("cache.{name}.prefetch_fills"), c.prefetch_fills.to_string());
        }
        row("sempe.regions_completed", self.sempe.regions_completed.to_string());
        row("sempe.drains", self.sempe.drains.to_string());
        row("sempe.spm_stall_cycles", self.sempe.spm_stall_cycles.to_string());
        row("sempe.max_nesting", self.sempe.max_nesting.to_string());
        row("sempe.squashed_sjmps", self.sempe.squashed_sjmps.to_string());
        s
    }
}

/// Result of a completed simulation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Did the program reach `HALT`?
    pub halted: bool,
    /// Final counters.
    pub stats: SimStats,
}

impl SimResult {
    /// Total cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.stats.cycles
    }

    /// Committed instructions.
    #[must_use]
    pub fn committed(&self) -> u64 {
        self.stats.committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_ratios() {
        let mut s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.cpi(), 0.0);
        s.cycles = 100;
        s.committed = 250;
        s.secure_committed = 50;
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.cpi() - 0.4).abs() < 1e-12);
        assert!((s.secure_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn report_renders_every_section() {
        let mut s = SimStats { cycles: 10, committed: 20, ..SimStats::default() };
        s.sempe.drains = 3;
        let text = s.report();
        for needle in [
            "sim.cycles",
            "sim.ipc",
            "bpred.",
            "cache.il1",
            "cache.dl1",
            "cache.l2",
            "sempe.drains",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        assert!(text.contains("2.000"), "ipc must be formatted");
    }
}
