//! The cycle-level out-of-order pipeline.
//!
//! Stage order within a cycle is reverse (commit first, fetch last) so
//! that values flow with realistic latencies: an op completing in cycle
//! *C* wakes dependents that may issue in *C* and commit no earlier than
//! *C+1*.
//!
//! SeMPE integration points (paper §IV-E/F, Figure 6):
//!
//! * **fetch** — sJMP always falls through (not-taken path first) and
//!   never touches the predictor; eosJMP stops fetch until it commits;
//! * **rename** — an sJMP needs [`sempe_core::SempeUnit::can_issue_sjmp`]
//!   (the jbTable LIFO gate) and, once renamed, blocks rename until it
//!   commits plus the scratchpad save (drain #1);
//! * **commit** — sJMP commit snapshots the architectural registers;
//!   eosJMP commits restore/merge registers, charge scratchpad transfer
//!   stalls, and redirect fetch (drains #2 and #3);
//! * **squash** — jbTable entries of squashed sJMPs are removed
//!   newest-first.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;

use sempe_core::trace::{CacheLevel, ObservationTrace, TraceEvent};
use sempe_core::unit::SempeUnit;
use sempe_core::{Json, SempeFault};
use sempe_isa::decode::DecodeMode;
use sempe_isa::insn::Inst;
use sempe_isa::mem::{MemSnapshot, Memory};
use sempe_isa::opcode::{Format, Opcode};
use sempe_isa::program::{layout, DecodedProgram, Program};
use sempe_isa::reg::{Reg, NUM_ARCH_REGS};
use sempe_isa::semantics::{access_width, branch_taken, eval_op, IntFault};
use sempe_isa::{Addr, DecodeError, ExecError};

use crate::bpred::{BranchPredictor, RasSnapshot};
use crate::cache::MemHierarchy;
use crate::config::{Roi, SecurityMode, SimConfig, Stepping};
use crate::lsq::{LoadCheck, Lsq};
use crate::rename::{PhysReg, RenameState};
use crate::rob::{Rob, RobEntry, RobSlot};
use crate::skip::Wake;
use crate::stats::{SimResult, SimStats};

/// How many run-loop iterations pass between host-deadline polls in
/// [`Simulator::run_with_deadline`]. Each iteration is one tick or one
/// multi-cycle skip, so a quantum is microseconds of host time — the
/// deadline overshoot is bounded well below any protocol-visible
/// latency budget while keeping `Instant::now` off the hot path.
pub const DEADLINE_QUANTUM: u32 = 4096;

/// Errors a simulation can raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program image failed to decode.
    Decode(DecodeError),
    /// An architectural fault reached commit.
    Exec(ExecError),
    /// A SeMPE invariant was violated (nesting overflow etc.).
    Sempe(SempeFault),
    /// No instruction committed for the watchdog window — the pipeline is
    /// wedged (this is a simulator bug, not a program property).
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Fetch PC at that point.
        fetch_pc: Addr,
        /// PC of the ROB head, if any.
        rob_head_pc: Option<Addr>,
    },
    /// `max_cycles` elapsed before `HALT`.
    CyclesExhausted {
        /// The budget that was exhausted.
        max_cycles: u64,
    },
    /// [`Simulator::checkpoint`] was called with µops still in flight;
    /// a checkpoint must be taken at a quiesced point (right after
    /// construction, or after a completed run).
    NotQuiesced {
        /// Cycle at which the checkpoint was attempted.
        cycle: u64,
    },
    /// A host-side wall-clock deadline expired before `HALT` (see
    /// [`Simulator::run_with_deadline`]). Unlike the cycle budget this is
    /// a property of the *hosting service*, not of the simulated
    /// machine; the error carries the partial progress so callers can
    /// report it.
    HostDeadline {
        /// Simulated cycle at which the deadline was noticed.
        cycle: u64,
        /// Instructions committed up to that point.
        committed: u64,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::Decode(e) => write!(f, "decode: {e}"),
            SimError::Exec(e) => write!(f, "execution fault: {e}"),
            SimError::Sempe(e) => write!(f, "secure-execution fault: {e}"),
            SimError::Watchdog { cycle, fetch_pc, rob_head_pc } => write!(
                f,
                "pipeline wedged at cycle {cycle} (fetch_pc={fetch_pc:#x}, rob head {rob_head_pc:?})"
            ),
            SimError::CyclesExhausted { max_cycles } => {
                write!(f, "no HALT within {max_cycles} cycles")
            }
            SimError::NotQuiesced { cycle } => {
                write!(f, "checkpoint at cycle {cycle} with µops in flight")
            }
            SimError::HostDeadline { cycle, committed } => {
                write!(f, "host deadline expired at cycle {cycle} ({committed} committed)")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<DecodeError> for SimError {
    fn from(e: DecodeError) -> Self {
        SimError::Decode(e)
    }
}

impl From<SempeFault> for SimError {
    fn from(e: SempeFault) -> Self {
        SimError::Sempe(e)
    }
}

/// A fetched instruction waiting for rename.
#[derive(Debug, Clone)]
struct FrontendEntry {
    seq: u64,
    pc: Addr,
    inst: Inst,
    len: u8,
    ready_cycle: u64,
    pred_taken: bool,
    pred_target: Addr,
    ghr_before: u64,
    ras_snapshot: Option<RasSnapshot>,
}

/// Why fetch is parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchBlock {
    None,
    /// Waiting for an eosJMP to commit and redirect.
    Eos,
    /// Fetched a HALT; nothing beyond it matters.
    Halt,
    /// Ran off the decoded region (wrong path); waiting for a squash.
    BadPc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IqClass {
    Int,
    Fp,
}

/// Verdict of the rename stage's structural-hazard gate for the next
/// frontend instruction (see [`Simulator::rename_gate`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RenameGate {
    /// No hazard: the instruction renames this cycle.
    Proceed,
    /// A structural hazard blocks it (and, in order, everything younger)
    /// until some event frees the resource.
    Blocked,
    /// The sJMP gate is closed with nothing left to open it: renaming
    /// must raise the paper's nesting-overflow run-time exception.
    NestingFault,
}

#[derive(Debug, Clone)]
struct IqEntry {
    seq: u64,
    slot: RobSlot,
    rs1: Option<PhysReg>,
    rs2: Option<PhysReg>,
    old_dest: Option<PhysReg>,
}

/// One slab slot of the issue queues.
///
/// The issue stage is wakeup/select, like the hardware it models: an
/// entry carries a count of still-pending source registers, writebacks
/// decrement it through per-register waiter lists, and entries whose
/// count hits zero enter a ready list. Selection then only looks at
/// ready entries instead of scanning every queued µop every cycle.
#[derive(Debug, Clone)]
struct IqSlot {
    class: IqClass,
    /// Source registers still awaiting writeback.
    pending: u8,
    /// Slot currently holds a live entry.
    active: bool,
    entry: IqEntry,
}

/// A scheduled writeback/resolution, ordered by `(cycle, seq)` so the
/// completion queue (a min-heap) pops events in exactly the order the
/// old scan-and-sort implementation processed them.
#[derive(Debug, Clone)]
struct Completion {
    cycle: u64,
    seq: u64,
    slot: RobSlot,
    kind: CompletionKind,
}

impl PartialEq for Completion {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle && self.seq == other.seq
    }
}

impl Eq for Completion {}

impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Completion {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.cycle, self.seq).cmp(&(other.cycle, other.seq))
    }
}

#[derive(Debug, Clone)]
enum CompletionKind {
    /// Plain writeback.
    Write { phys: PhysReg, value: u64 },
    /// Writeback of a load (also releases its LQ slot).
    LoadDone { phys: PhysReg, value: u64 },
    /// Store AGU done: publish address/data to the store queue.
    StoreResolve { id: u64, addr: Addr, data: u64, width: u8 },
    /// Branch resolution (may write a return address first).
    BranchResolve { write: Option<(PhysReg, u64)> },
    /// Completion with no effect (faulted op placeholder).
    Nothing,
}

/// Host-time attribution of one simulator's work: where the *host's*
/// wall clock went, as opposed to where the *simulated* cycles went
/// ([`SimStats`]).
///
/// Lifetime contract (pinned by `tests/host_profile.rs`):
///
/// * **Reset** by [`Simulator::new`] / [`Simulator::rebuild`] (a fresh
///   machine starts a fresh ledger) and by
///   [`Simulator::take_host_profile`].
/// * **Accumulates** across [`Simulator::restore_from`]: a fork-server
///   worker restoring N trials sees the sum of all N restores and runs,
///   so a service request maps to exactly one `take_host_profile()`.
///   This is deliberately *different* from [`Simulator::skip_counters`],
///   which resets per restore (a per-trial diagnostic).
///
/// Like the skip counters, none of this feeds [`SimStats`]: simulated
/// results stay bit-for-bit identical whether or not anyone reads the
/// profile, and the cost is two `Instant::now()` calls per run/restore
/// — nothing per simulated cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostProfile {
    /// Nanoseconds spent decoding + loading the program image
    /// ([`Simulator::new`] / [`Simulator::rebuild`]).
    pub decode_ns: u64,
    /// Nanoseconds spent in [`Simulator::restore_from`] rollbacks.
    pub restore_ns: u64,
    /// Nanoseconds spent inside the run loop.
    pub run_ns: u64,
    /// Number of run calls folded into `run_ns`.
    pub runs: u64,
    /// Number of checkpoint restores folded into `restore_ns`.
    pub restores: u64,
    /// Cycles fast-forwarded by the next-event skip (accumulating
    /// twin of [`Simulator::skip_counters`]).
    pub skipped_cycles: u64,
    /// Skip jumps taken.
    pub skips: u64,
    /// Instructions executed by the tiered functional fast-forward
    /// engine (see [`crate::tier`]).
    pub ff_instructions: u64,
    /// Nanoseconds spent inside fast-forward segments. Attribution
    /// *within* `run_ns` (segments run inside the run loop), so it is
    /// deliberately not added to [`HostProfile::total_ns`].
    pub ff_ns: u64,
    /// Nanoseconds of `ff_ns` spent warming timed structures (caches,
    /// predictors, prefetchers). A sampled estimate — see
    /// [`crate::tier::FullWarmup`].
    pub warm_ns: u64,
}

impl HostProfile {
    /// Fold another ledger into this one, field-wise (e.g. summing the
    /// main and side arena slots of a service worker).
    pub fn absorb(&mut self, other: &HostProfile) {
        self.decode_ns += other.decode_ns;
        self.restore_ns += other.restore_ns;
        self.run_ns += other.run_ns;
        self.runs += other.runs;
        self.restores += other.restores;
        self.skipped_cycles += other.skipped_cycles;
        self.skips += other.skips;
        self.ff_instructions += other.ff_instructions;
        self.ff_ns += other.ff_ns;
        self.warm_ns += other.warm_ns;
    }

    /// Total attributed host nanoseconds (decode + restore + run).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.decode_ns.saturating_add(self.restore_ns).saturating_add(self.run_ns)
    }

    /// JSON form (durations in whole microseconds), as embedded in
    /// bench reports and service trace events.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("decode_us", self.decode_ns / 1_000)
            .with("restore_us", self.restore_ns / 1_000)
            .with("run_us", self.run_ns / 1_000)
            .with("runs", self.runs)
            .with("restores", self.restores)
            .with("skipped_cycles", self.skipped_cycles)
            .with("skips", self.skips)
            .with("ff_instructions", self.ff_instructions)
            .with("ff_us", self.ff_ns / 1_000)
            .with("warm_us", self.warm_ns / 1_000)
    }
}

fn elapsed_ns(since: std::time::Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// The cycle-level simulator.
///
/// # Examples
///
/// ```
/// use sempe_isa::asm::Asm;
/// use sempe_isa::reg::abi;
/// use sempe_sim::config::SimConfig;
/// use sempe_sim::pipeline::Simulator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new();
/// a.movi(abi::A[0], 20);
/// a.addi(abi::A[0], abi::A[0], 22);
/// a.halt();
/// let prog = a.assemble()?;
///
/// let mut sim = Simulator::new(&prog, SimConfig::baseline())?;
/// let result = sim.run(10_000)?;
/// assert!(result.halted);
/// assert_eq!(sim.arch_reg(abi::A[0]), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    /// Shared so a [`Checkpoint`] (and every simulator forked from it)
    /// reuses one decode instead of re-decoding per trial.
    prog: Arc<DecodedProgram>,
    mem: Memory,
    cycle: u64,
    seq_counter: u64,
    halted: bool,

    // Front end.
    fetch_pc: Addr,
    fetch_stall_until: u64,
    fetch_block: FetchBlock,
    last_fetch_line: Option<u64>,
    frontend: VecDeque<FrontendEntry>,
    bp: BranchPredictor,

    // Back end.
    rename: RenameState,
    rob: Rob,
    /// Issue-queue slab (both classes share it; see [`IqSlot`]).
    iq_slots: Vec<IqSlot>,
    /// Free slab indices.
    iq_free: Vec<u32>,
    /// Ready entries per class, as `(slab index, seq)` records; a record
    /// is live while the slot is active and the seq still matches.
    iq_ready_int: Vec<(u32, u64)>,
    iq_ready_fp: Vec<(u32, u64)>,
    /// Occupancy per class (structural-hazard gating at rename).
    iq_count_int: usize,
    iq_count_fp: usize,
    /// Per physical register: `(slab index, seq)` of entries waiting on
    /// its writeback. Stale records are dropped at wake time.
    reg_waiters: Vec<Vec<(u32, u64)>>,
    lsq: Lsq,
    /// Pending completions, a min-heap keyed by `(cycle, seq)`: the
    /// complete stage pops only what is due instead of scanning (and
    /// reallocating) the whole in-flight set every cycle.
    events: BinaryHeap<Reverse<Completion>>,
    replay: Vec<(u64, RobSlot)>,
    /// Store-queue version at the last replay pass: a waiting load's
    /// verdict can only change when the store queue changes, so replay
    /// passes against an unchanged queue are skipped wholesale.
    replay_lsq_version: u64,
    rename_blocked_on: Option<u64>,
    rename_stall_until: u64,
    /// The integer divider is a single non-pipelined unit.
    int_div_busy_until: u64,
    /// So is the FP divider.
    fp_div_busy_until: u64,

    // Memory system.
    hier: MemHierarchy,

    // Architectural state (committed).
    arch_regs: [u64; NUM_ARCH_REGS],

    // SeMPE.
    unit: SempeUnit,

    // Tiered execution (see `crate::tier`).
    /// Under [`Stepping::Tiered`]: `true` while the detailed pipeline
    /// must run (inside the ROI, or executing toward its close); `false`
    /// while the next quiesced point may hand off to fast-forward. The
    /// fetch stage is gated on it so the machine drains naturally after
    /// an ROI closes. Meaningless (and ignored) in other stepping modes.
    tier_detailed: bool,
    /// Cycle at which the currently open ROI span started (an outermost
    /// sJMP commit under [`Roi::Regions`], the `skip+1`-th commit under
    /// [`Roi::Window`]); `None` while outside the ROI. Commit-anchored,
    /// so identical across stepping modes.
    roi_open_cycle: Option<u64>,
    /// Completed ROI spans as `(open_cycle, close_cycle)` pairs, in
    /// commit order. The substrate for ROI-window trace comparison and
    /// bench reporting.
    roi_spans: Vec<(u64, u64)>,

    // Observability.
    trace: ObservationTrace,
    stats: SimStats,
    last_commit_cycle: u64,
    /// Cycles fast-forwarded by the next-event skip. Host-side
    /// diagnostics only — deliberately *not* part of [`SimStats`], which
    /// must be bit-for-bit identical between skip and classic stepping.
    skipped_cycles: u64,
    /// Number of skip jumps taken.
    skips: u64,
    /// Host-time ledger (see [`HostProfile`] for the lifetime contract).
    host: HostProfile,

    // Reusable scratch buffers: the per-cycle stages must not allocate.
    due_scratch: Vec<Completion>,
    issue_candidates: Vec<(u64, u32)>,
    replay_scratch: Vec<(u64, RobSlot)>,
}

impl Simulator {
    /// Build a simulator for `prog` under `config`, loading code and data
    /// into a fresh memory.
    ///
    /// # Errors
    ///
    /// [`SimError::Decode`] when the image does not decode under the
    /// configured front end.
    pub fn new(prog: &Program, config: SimConfig) -> Result<Self, SimError> {
        let build_start = std::time::Instant::now();
        let decode_mode = match config.mode {
            SecurityMode::Baseline => DecodeMode::Legacy,
            SecurityMode::Sempe => DecodeMode::Sempe,
        };
        let decoded = prog.decoded(decode_mode)?;
        let mut mem = Memory::new();
        prog.load_into(&mut mem);
        let mut arch_regs = [0u64; NUM_ARCH_REGS];
        arch_regs[Reg::SP.index()] = layout::STACK_TOP;
        let mut sim = Simulator {
            fetch_pc: decoded.entry(),
            prog: Arc::new(decoded),
            mem,
            cycle: 0,
            seq_counter: 0,
            halted: false,
            fetch_stall_until: 0,
            fetch_block: FetchBlock::None,
            last_fetch_line: None,
            frontend: VecDeque::new(),
            bp: BranchPredictor::new(config.bpred),
            rename: RenameState::new(
                config.core.int_phys_regs,
                config.core.fp_phys_regs,
                &arch_regs,
            ),
            rob: Rob::new(config.core.rob_entries),
            iq_slots: Vec::new(),
            iq_free: Vec::new(),
            iq_ready_int: Vec::new(),
            iq_ready_fp: Vec::new(),
            iq_count_int: 0,
            iq_count_fp: 0,
            reg_waiters: vec![Vec::new(); config.core.int_phys_regs + config.core.fp_phys_regs],
            lsq: Lsq::new(config.core.lq_entries, config.core.sq_entries),
            events: BinaryHeap::with_capacity(config.core.rob_entries),
            replay: Vec::new(),
            replay_lsq_version: 0,
            rename_blocked_on: None,
            rename_stall_until: 0,
            int_div_busy_until: 0,
            fp_div_busy_until: 0,
            hier: MemHierarchy::new(config.mem),
            arch_regs,
            unit: SempeUnit::new(config.sempe),
            tier_detailed: false,
            roi_open_cycle: None,
            roi_spans: Vec::new(),
            trace: ObservationTrace::new(),
            stats: SimStats::default(),
            last_commit_cycle: 0,
            skipped_cycles: 0,
            skips: 0,
            host: HostProfile::default(),
            due_scratch: Vec::new(),
            issue_candidates: Vec::new(),
            replay_scratch: Vec::new(),
            config,
        };
        sim.host.decode_ns = elapsed_ns(build_start);
        Ok(sim)
    }

    /// Rebuild this simulator in place for a new program and
    /// configuration, recycling the previous run's heap allocations.
    ///
    /// Semantically identical to `*self = Simulator::new(prog, config)?`
    /// — every recycled collection starts a run empty, so only spare
    /// capacity carries over, never state — but a long-lived worker (the
    /// evaluation service keeps one simulator arena per worker thread)
    /// skips re-growing the issue-queue slab, wakeup lists, completion
    /// heap, and stage scratch buffers on every job.
    ///
    /// # Errors
    ///
    /// [`SimError::Decode`] when the image does not decode under the
    /// configured front end; `self` is left untouched in that case.
    pub fn rebuild(&mut self, prog: &Program, config: SimConfig) -> Result<(), SimError> {
        let mut fresh = Self::new(prog, config)?;
        let recycle = |dst: &mut Vec<(u32, u64)>, src: &mut Vec<(u32, u64)>| {
            src.clear();
            core::mem::swap(dst, src);
        };
        recycle(&mut fresh.iq_ready_int, &mut self.iq_ready_int);
        recycle(&mut fresh.iq_ready_fp, &mut self.iq_ready_fp);
        self.iq_slots.clear();
        core::mem::swap(&mut fresh.iq_slots, &mut self.iq_slots);
        self.iq_free.clear();
        core::mem::swap(&mut fresh.iq_free, &mut self.iq_free);
        self.frontend.clear();
        core::mem::swap(&mut fresh.frontend, &mut self.frontend);
        self.replay.clear();
        core::mem::swap(&mut fresh.replay, &mut self.replay);
        self.roi_spans.clear();
        core::mem::swap(&mut fresh.roi_spans, &mut self.roi_spans);
        self.due_scratch.clear();
        core::mem::swap(&mut fresh.due_scratch, &mut self.due_scratch);
        self.issue_candidates.clear();
        core::mem::swap(&mut fresh.issue_candidates, &mut self.issue_candidates);
        self.replay_scratch.clear();
        core::mem::swap(&mut fresh.replay_scratch, &mut self.replay_scratch);
        self.events.clear();
        if self.events.capacity() >= fresh.events.capacity() {
            core::mem::swap(&mut fresh.events, &mut self.events);
        }
        if self.reg_waiters.len() == fresh.reg_waiters.len() {
            for w in &mut self.reg_waiters {
                w.clear();
            }
            core::mem::swap(&mut fresh.reg_waiters, &mut self.reg_waiters);
        }
        *self = fresh;
        Ok(())
    }

    /// The arena idiom shared by every long-lived driver (service
    /// workers, the differential fuzzer): rebuild `slot`'s simulator in
    /// place for the next program, or construct one on first use, and
    /// hand back the ready-to-run machine. Centralized here so a future
    /// change to rebuild semantics cannot silently diverge between
    /// callers.
    ///
    /// # Errors
    ///
    /// [`SimError`] from construction or rebuild; `slot` keeps its
    /// previous simulator (if any) on rebuild failure.
    pub fn rebuild_or_new<'a>(
        slot: &'a mut Option<Simulator>,
        prog: &Program,
        config: SimConfig,
    ) -> Result<&'a mut Simulator, SimError> {
        match slot {
            Some(sim) => {
                sim.rebuild(prog, config)?;
                Ok(sim)
            }
            None => Ok(slot.insert(Simulator::new(prog, config)?)),
        }
    }

    /// Capture the machine's complete state as a [`Checkpoint`].
    ///
    /// The checkpoint is self-contained and immutable: it carries the
    /// shared decode (`Arc<DecodedProgram>`), a memory snapshot, and a
    /// copy of every persistent structure (register files, RAT, branch
    /// predictor tables, cache hierarchy, SeMPE unit, statistics, trace),
    /// so any number of simulators can later [`Simulator::restore_from`]
    /// it — the fork-server pattern: build + decode once, fork per trial.
    ///
    /// Taking the snapshot also arms this memory's dirty-page tracking,
    /// making a subsequent restore *of this simulator* O(dirty pages).
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiesced`] when µops are in flight: a checkpoint is
    /// only defined at a drained point (right after construction — the
    /// intended fork point — or after a completed run), because in-flight
    /// state is deliberately not captured.
    pub fn checkpoint(&mut self) -> Result<Checkpoint, SimError> {
        if !self.is_quiesced() {
            return Err(SimError::NotQuiesced { cycle: self.cycle });
        }
        Ok(Checkpoint {
            config: self.config,
            prog: Arc::clone(&self.prog),
            mem: self.mem.snapshot(),
            cycle: self.cycle,
            seq_counter: self.seq_counter,
            halted: self.halted,
            fetch_pc: self.fetch_pc,
            fetch_stall_until: self.fetch_stall_until,
            fetch_block: self.fetch_block,
            last_fetch_line: self.last_fetch_line,
            bp: self.bp.clone(),
            rename: self.rename.clone(),
            rename_stall_until: self.rename_stall_until,
            int_div_busy_until: self.int_div_busy_until,
            fp_div_busy_until: self.fp_div_busy_until,
            lsq_forwards: self.lsq.forwards,
            hier: self.hier.clone(),
            arch_regs: self.arch_regs,
            unit: self.unit.clone(),
            tier_detailed: self.tier_detailed,
            roi_open_cycle: self.roi_open_cycle,
            roi_spans: self.roi_spans.clone(),
            trace: self.trace.clone(),
            stats: self.stats,
            last_commit_cycle: self.last_commit_cycle,
        })
    }

    /// Is the machine at a drained point — no µops in flight anywhere?
    /// The gate for [`Simulator::checkpoint`] and for a tiered
    /// detailed→fast-forward handoff.
    fn is_quiesced(&self) -> bool {
        self.frontend.is_empty()
            && self.rob.is_empty()
            && self.events.is_empty()
            && self.replay.is_empty()
            && self.lsq.is_idle()
            && self.rename_blocked_on.is_none()
    }

    /// Become the checkpointed machine, bit for bit.
    ///
    /// Persistent state is copied from the checkpoint; the memory rolls
    /// back through its dirty-page log (O(dirty pages) when this
    /// simulator is synchronized with `cp`'s snapshot — always the case
    /// in a restore-patch-run loop — and a full image copy otherwise,
    /// which still skips the decode). Transient structures (frontend,
    /// ROB, issue queues, completion heap, LSQ) were empty at checkpoint
    /// time by the quiesce gate, so they reset in place, keeping their
    /// allocations. A run after `restore_from` is cycle-for-cycle,
    /// event-for-event identical to a run of a freshly built simulator
    /// with the same program image (asserted by the golden tests in
    /// `tests/checkpoint.rs` and the fuzzer's fork oracle).
    pub fn restore_from(&mut self, cp: &Checkpoint) {
        let restore_start = std::time::Instant::now();
        // Persistent state.
        self.config = cp.config;
        self.prog = Arc::clone(&cp.prog);
        self.mem.restore(&cp.mem);
        self.cycle = cp.cycle;
        self.seq_counter = cp.seq_counter;
        self.halted = cp.halted;
        self.fetch_pc = cp.fetch_pc;
        self.fetch_stall_until = cp.fetch_stall_until;
        self.fetch_block = cp.fetch_block;
        self.last_fetch_line = cp.last_fetch_line;
        self.bp.clone_from(&cp.bp);
        self.rename.clone_from(&cp.rename);
        self.rename_stall_until = cp.rename_stall_until;
        self.int_div_busy_until = cp.int_div_busy_until;
        self.fp_div_busy_until = cp.fp_div_busy_until;
        self.hier.clone_from(&cp.hier);
        self.arch_regs = cp.arch_regs;
        self.unit.clone_from(&cp.unit);
        self.tier_detailed = cp.tier_detailed;
        self.roi_open_cycle = cp.roi_open_cycle;
        self.roi_spans.clear();
        self.roi_spans.extend_from_slice(&cp.roi_spans);
        self.trace.clone_from(&cp.trace);
        self.stats = cp.stats;
        self.last_commit_cycle = cp.last_commit_cycle;
        // Host-side skip diagnostics restart with the forked trial.
        self.skipped_cycles = 0;
        self.skips = 0;
        // Transient state: empty at the checkpoint, so reset in place.
        self.frontend.clear();
        self.rob.reset(cp.config.core.rob_entries);
        self.iq_slots.clear();
        self.iq_free.clear();
        self.iq_ready_int.clear();
        self.iq_ready_fp.clear();
        self.iq_count_int = 0;
        self.iq_count_fp = 0;
        let total_phys = cp.config.core.int_phys_regs + cp.config.core.fp_phys_regs;
        self.reg_waiters.resize_with(total_phys, Vec::new);
        for w in &mut self.reg_waiters {
            w.clear();
        }
        self.lsq.reset(cp.config.core.lq_entries, cp.config.core.sq_entries);
        self.lsq.forwards = cp.lsq_forwards;
        self.replay_lsq_version = 0;
        self.events.clear();
        self.replay.clear();
        self.rename_blocked_on = None;
        self.due_scratch.clear();
        self.issue_candidates.clear();
        self.replay_scratch.clear();
        // The host ledger accumulates across restores (one request =
        // many trials); only rebuild/take reset it.
        self.host.restore_ns += elapsed_ns(restore_start);
        self.host.restores += 1;
    }

    /// Build a simulator directly from a checkpoint — no program decode,
    /// no image reload beyond the snapshot copy. The workhorse of a fork
    /// server's first trial on a fresh worker; later trials reuse the
    /// worker's simulator via [`Simulator::restore_from`].
    #[must_use]
    pub fn from_checkpoint(cp: &Checkpoint) -> Simulator {
        let config = cp.config;
        let mut sim = Simulator {
            config,
            prog: Arc::clone(&cp.prog),
            mem: Memory::new(),
            cycle: 0,
            seq_counter: 0,
            halted: false,
            fetch_pc: 0,
            fetch_stall_until: 0,
            fetch_block: FetchBlock::None,
            last_fetch_line: None,
            frontend: VecDeque::new(),
            bp: cp.bp.clone(),
            rename: cp.rename.clone(),
            rob: Rob::new(config.core.rob_entries),
            iq_slots: Vec::new(),
            iq_free: Vec::new(),
            iq_ready_int: Vec::new(),
            iq_ready_fp: Vec::new(),
            iq_count_int: 0,
            iq_count_fp: 0,
            reg_waiters: vec![Vec::new(); config.core.int_phys_regs + config.core.fp_phys_regs],
            lsq: Lsq::new(config.core.lq_entries, config.core.sq_entries),
            events: BinaryHeap::with_capacity(config.core.rob_entries),
            replay: Vec::new(),
            replay_lsq_version: 0,
            rename_blocked_on: None,
            rename_stall_until: 0,
            int_div_busy_until: 0,
            fp_div_busy_until: 0,
            hier: cp.hier.clone(),
            arch_regs: cp.arch_regs,
            unit: cp.unit.clone(),
            tier_detailed: cp.tier_detailed,
            roi_open_cycle: cp.roi_open_cycle,
            roi_spans: cp.roi_spans.clone(),
            trace: cp.trace.clone(),
            stats: cp.stats,
            last_commit_cycle: 0,
            skipped_cycles: 0,
            skips: 0,
            host: HostProfile::default(),
            due_scratch: Vec::new(),
            issue_candidates: Vec::new(),
            replay_scratch: Vec::new(),
        };
        sim.restore_from(cp);
        sim
    }

    /// The fork-server arena idiom: restore `slot`'s simulator from the
    /// checkpoint, or construct one from it on first use.
    pub fn restore_or_new<'a>(
        slot: &'a mut Option<Simulator>,
        cp: &Checkpoint,
    ) -> &'a mut Simulator {
        match slot {
            Some(sim) => {
                sim.restore_from(cp);
                sim
            }
            None => slot.insert(Simulator::from_checkpoint(cp)),
        }
    }

    /// Committed value of an architectural register.
    #[must_use]
    pub fn arch_reg(&self, r: Reg) -> u64 {
        if r.is_zero() {
            0
        } else {
            self.arch_regs[r.index()]
        }
    }

    /// The simulated memory (committed stores only).
    #[must_use]
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable memory access (poke inputs before running).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The observation trace (empty unless `record_trace` was set).
    #[must_use]
    pub fn trace(&self) -> &ObservationTrace {
        &self.trace
    }

    /// Statistics so far (cache/bpred/sempe counters are snapshotted).
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats;
        s.cycles = self.cycle;
        s.il1 = self.hier.il1_stats();
        s.dl1 = self.hier.dl1_stats();
        s.l2 = self.hier.l2_stats();
        s.bpred = self.bp.stats();
        s.sempe = self.unit.stats();
        s.load_forwards = self.lsq.forwards;
        s
    }

    /// Completed ROI spans as `(open_cycle, close_cycle)` pairs in
    /// commit order — one per outermost secure region under
    /// [`Roi::Regions`], at most one under [`Roi::Window`]. Identical
    /// across stepping modes wherever tiered warmup is exact; the
    /// substrate for ROI-window trace comparison
    /// ([`ObservationTrace::window`]).
    #[must_use]
    pub fn roi_spans(&self) -> &[(u64, u64)] {
        &self.roi_spans
    }

    /// Host-side cycle-skip diagnostics: `(cycles fast-forwarded, skip
    /// jumps taken)` since construction, rebuild, or restore. Kept out
    /// of [`SimStats`] so identical-run comparisons (skip vs classic,
    /// forked vs cold) never see them.
    #[must_use]
    pub fn skip_counters(&self) -> (u64, u64) {
        (self.skipped_cycles, self.skips)
    }

    /// The host-time ledger since construction, rebuild, or the last
    /// [`Simulator::take_host_profile`]. See [`HostProfile`] for the
    /// exact reset/accumulate contract.
    #[must_use]
    pub fn host_profile(&self) -> HostProfile {
        self.host
    }

    /// Read and reset the host-time ledger — the per-request idiom: a
    /// service worker takes the profile after finishing a job so the
    /// next job on the same arena starts from zero.
    pub fn take_host_profile(&mut self) -> HostProfile {
        core::mem::take(&mut self.host)
    }

    /// Run until `HALT` or `max_cycles`.
    ///
    /// Unless [`Stepping::Classic`] is configured, quiescent spans —
    /// runs of cycles in which no stage can make forward progress — are
    /// fast-forwarded to the next event instead of ticked one by one.
    /// This is purely a host-speed optimization: cycles, statistics,
    /// outputs, observation traces, and error cycles are bit-for-bit
    /// identical to classic stepping (see [`crate::skip`]).
    ///
    /// Under [`Stepping::Tiered`], instructions outside the region of
    /// interest additionally execute on the functional fast-forward
    /// engine (see [`crate::tier`]): `stats.cycles` then counts detailed
    /// cycles only, while `committed`, `roi_cycles`, architectural
    /// results, and ROI-window traces remain comparable to a full
    /// detailed run.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; see the variants.
    pub fn run(&mut self, max_cycles: u64) -> Result<SimResult, SimError> {
        self.run_with_deadline(max_cycles, None)
    }

    /// [`Simulator::run`] with an additional host-side wall-clock bound.
    ///
    /// The deadline is polled every [`DEADLINE_QUANTUM`] loop iterations
    /// (a "watchdog quantum"), so the run returns at most one quantum of
    /// simulation past the deadline. The clock never influences the
    /// simulated machine — two runs of the same binary are bit-for-bit
    /// identical whether or not a deadline is armed, unless the deadline
    /// actually fires (in which case [`SimError::HostDeadline`] carries
    /// the partial progress).
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; see the variants.
    pub fn run_with_deadline(
        &mut self,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<SimResult, SimError> {
        let run_start = std::time::Instant::now();
        let result = self.run_loop(max_cycles, deadline);
        self.host.run_ns += elapsed_ns(run_start);
        self.host.runs += 1;
        result
    }

    fn run_loop(
        &mut self,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<SimResult, SimError> {
        let mut quantum = 0u32;
        while !self.halted {
            if self.cycle >= max_cycles {
                return Err(SimError::CyclesExhausted { max_cycles });
            }
            if self.cycle.saturating_sub(self.last_commit_cycle) > self.config.watchdog_cycles {
                return Err(SimError::Watchdog {
                    cycle: self.cycle,
                    fetch_pc: self.fetch_pc,
                    rob_head_pc: self.rob.head().map(|e| e.pc),
                });
            }
            if let Some(d) = deadline {
                quantum += 1;
                if quantum >= DEADLINE_QUANTUM {
                    quantum = 0;
                    if std::time::Instant::now() >= d {
                        return Err(SimError::HostDeadline {
                            cycle: self.cycle,
                            committed: self.stats.committed,
                        });
                    }
                }
            }
            // Tiered handoff: outside the ROI, at a quiesced point, the
            // functional fast-forward engine executes the gap. It moves
            // `stats.committed` (never `cycle`); the `continue` re-enters
            // with `tier_detailed` set so detailed execution resumes at
            // the boundary.
            if self.config.stepping == Stepping::Tiered && !self.tier_detailed && self.is_quiesced()
            {
                self.fast_forward_segment(max_cycles, deadline)?;
                continue;
            }
            // A skip moves `cycle` without ticking; loop back around so
            // the budget and watchdog bounds are re-checked at the new
            // cycle exactly as classic stepping would have checked them.
            if self.config.stepping != Stepping::Classic && self.try_skip(max_cycles) {
                continue;
            }
            self.tick()?;
        }
        self.trace.total_cycles = self.cycle;
        Ok(SimResult { halted: true, stats: self.stats() })
    }

    /// Combined next-event report of every timed structure (see
    /// [`crate::skip`] for the per-structure contracts). [`Wake::Now`]
    /// means some stage can act in the current cycle and skipping is
    /// illegal; [`Wake::At`] bounds how far the machine may
    /// fast-forward; [`Wake::Idle`] means only the run bounds (cycle
    /// budget, watchdog) limit the jump — the machine is wedged.
    #[must_use]
    pub fn next_wake(&self) -> Wake {
        let mut wake = self.rob.commit_wake();
        if wake == Wake::Now {
            return wake;
        }
        wake = wake.earliest(self.events_wake());
        if wake == Wake::Now {
            return wake;
        }
        wake = wake.earliest(self.issue_wake());
        if wake == Wake::Now {
            return wake;
        }
        wake = wake.earliest(self.replay_wake());
        if wake == Wake::Now {
            return wake;
        }
        wake = wake.earliest(self.rename_wake());
        if wake == Wake::Now {
            return wake;
        }
        wake = wake.earliest(self.fetch_wake());
        wake = wake.earliest(self.hier.wake());
        wake.earliest(match self.unit.next_event_cycle() {
            None => Wake::Idle,
            Some(c) => Wake::At(c),
        })
    }

    /// Attempt a next-event fast-forward. Returns `true` when cycles
    /// were skipped (the caller must re-check its run bounds before
    /// ticking). The jump is clamped to `max_cycles` and the watchdog
    /// deadline so both errors fire at exactly the cycle classic
    /// stepping reports them.
    fn try_skip(&mut self, max_cycles: u64) -> bool {
        let deadline =
            self.last_commit_cycle.saturating_add(self.config.watchdog_cycles).saturating_add(1);
        let bound = max_cycles.min(deadline);
        let target = match self.next_wake() {
            Wake::Now => return false,
            Wake::At(t) => t.min(bound),
            Wake::Idle => bound,
        };
        if target <= self.cycle {
            return false;
        }
        let span = target - self.cycle;
        // Bulk-account the per-cycle counters the skipped ticks would
        // have incremented. The only one is the rename drain stall; its
        // predicate is constant across the span: `rename_blocked_on`
        // only changes at commit/squash (events, which end a skip), and
        // `rename_wake` caps the jump at `rename_stall_until` whenever
        // the timer is still running.
        if self.rename_blocked_on.is_some() || self.cycle < self.rename_stall_until {
            self.stats.drain_stall_cycles += span;
        }
        self.skipped_cycles += span;
        self.skips += 1;
        self.host.skipped_cycles += span;
        self.host.skips += 1;
        self.cycle = target;
        true
    }

    /// May a fast-forward segment run right now (ignoring quiescence)?
    /// Never inside a secure region — SeMPE's both-path semantics belong
    /// to the pipeline — and never inside an explicit measurement
    /// window.
    fn ff_permitted(&self) -> bool {
        !self.unit.in_secure_region()
            && crate::tier::ff_window_allows(self.config.roi, self.stats.committed)
    }

    /// Execute one functional fast-forward segment: from the current
    /// fetch PC to the next ROI boundary (or fault/budget/deadline),
    /// warming the timed structures along the committed path. The
    /// machine must be quiesced (it stays architecturally consistent —
    /// fast-forward has no in-flight state). On a boundary the detailed
    /// pipeline resumes at the boundary PC with `tier_detailed` set.
    fn fast_forward_segment(
        &mut self,
        max_cycles: u64,
        deadline: Option<std::time::Instant>,
    ) -> Result<(), SimError> {
        use crate::tier::{FastForward, FfStop, FullWarmup};
        let ff_start = std::time::Instant::now();
        // In any detailed run `committed <= retire_width * cycles`, so
        // this bound only fires where classic stepping would also have
        // run out of its cycle budget.
        let budget = max_cycles.saturating_mul(self.config.core.retire_width as u64);
        let mut warm = FullWarmup::default();
        let mut ff = FastForward {
            prog: &self.prog,
            mem: &mut self.mem,
            regs: &mut self.arch_regs,
            hier: &mut self.hier,
            bp: &mut self.bp,
            last_fetch_line: &mut self.last_fetch_line,
            pc: self.fetch_pc,
            committed: self.stats.committed,
            executed: 0,
        };
        let stop =
            ff.run(&mut warm, self.config.roi, self.config.core.sq_entries, budget, deadline);
        let (pc, committed, executed) = (ff.pc, ff.committed, ff.executed);
        self.fetch_pc = pc;
        self.stats.committed = committed;
        self.stats.ff_committed += executed;
        if executed > 0 {
            // Fast-forwarded instructions are forward progress as far as
            // the wedge watchdog is concerned.
            self.last_commit_cycle = self.cycle;
        }
        self.host.ff_instructions += executed;
        self.host.ff_ns += elapsed_ns(ff_start);
        self.host.warm_ns += warm.warm_ns();
        match stop {
            FfStop::Boundary => {
                // Resynchronize the physical file with the fast-forwarded
                // architectural registers (the machine is quiesced, so
                // this is the same RAT rebuild the eosJMP restore does).
                for r in Reg::all() {
                    self.rename.poke_arch(r, self.arch_regs[r.index()]);
                }
                // Detailed execution resumes cleanly at the boundary PC;
                // mid-gap fetch stalls belong to the fast-forwarded past.
                self.fetch_block = FetchBlock::None;
                self.fetch_stall_until = self.cycle;
                self.tier_detailed = true;
                Ok(())
            }
            FfStop::Fault(e) => Err(SimError::Exec(e)),
            FfStop::Budget => Err(SimError::CyclesExhausted { max_cycles }),
            FfStop::Deadline => {
                Err(SimError::HostDeadline { cycle: self.cycle, committed: self.stats.committed })
            }
        }
    }

    /// Next-event report of the completion min-heap.
    fn events_wake(&self) -> Wake {
        match self.events.peek() {
            None => Wake::Idle,
            Some(Reverse(e)) if e.cycle <= self.cycle => Wake::Now,
            Some(Reverse(e)) => Wake::At(e.cycle),
        }
    }

    /// Next-event report of the issue stage: any woken entry can issue
    /// this cycle. Conservative — a ready list holding only entries
    /// blocked on a busy divider (or stale post-squash records, pruned
    /// by the next issue pass) also reports [`Wake::Now`]; those spans
    /// are short and simply fall back to classic stepping.
    fn issue_wake(&self) -> Wake {
        if self.iq_ready_int.is_empty() && self.iq_ready_fp.is_empty() {
            Wake::Idle
        } else {
            Wake::Now
        }
    }

    /// Next-event report of the load-replay machinery: waiting loads
    /// re-check only when the store queue has changed since their last
    /// verdict.
    fn replay_wake(&self) -> Wake {
        if self.replay.is_empty() {
            Wake::Idle
        } else {
            self.lsq.wake_since(self.replay_lsq_version)
        }
    }

    /// Next-event report of the rename stage. Mirrors `rename_stage`'s
    /// gating exactly: the structural hazards come from the same
    /// [`Simulator::rename_gate`] the stage itself uses, so the two
    /// cannot drift.
    fn rename_wake(&self) -> Wake {
        if self.rename_blocked_on.is_some() {
            // Dissolves at the sJMP's commit or squash — event-driven.
            return Wake::Idle;
        }
        if self.cycle < self.rename_stall_until {
            // Also bounds the drain-stall bulk accounting in `try_skip`.
            return Wake::At(self.rename_stall_until);
        }
        let Some(fe) = self.frontend.front() else { return Wake::Idle };
        if fe.ready_cycle > self.cycle {
            return Wake::At(fe.ready_cycle);
        }
        match self.rename_gate(&fe.inst) {
            // A pending nesting-overflow fault must be raised by a real
            // tick at this very cycle, exactly as classic stepping does.
            RenameGate::Proceed | RenameGate::NestingFault => Wake::Now,
            RenameGate::Blocked => Wake::Idle,
        }
    }

    /// Next-event report of the fetch stage.
    fn fetch_wake(&self) -> Wake {
        if self.fetch_block != FetchBlock::None {
            // Eos/Halt/BadPc blocks dissolve at a commit or squash.
            return Wake::Idle;
        }
        if self.frontend.len() >= self.config.core.frontend_queue {
            return Wake::Idle;
        }
        if self.cycle < self.fetch_stall_until {
            return Wake::At(self.fetch_stall_until);
        }
        Wake::Now
    }

    /// Advance one cycle.
    fn tick(&mut self) -> Result<(), SimError> {
        self.commit_stage()?;
        if self.halted {
            return Ok(());
        }
        self.complete_stage();
        self.replay_loads();
        self.issue_stage();
        self.rename_stage()?;
        self.fetch_stage();
        self.cycle += 1;
        Ok(())
    }

    // ---------------------------------------------------------- tracing

    fn trace_event(&mut self, ev: TraceEvent) {
        if self.config.record_trace {
            self.trace.push(self.cycle, ev);
        }
    }

    fn trace_cache(&mut self, l1: CacheLevel, result: crate::cache::AccessResult) {
        if !self.config.record_trace {
            return;
        }
        self.trace.push(self.cycle, TraceEvent::Cache { level: l1, hit: result.l1_hit });
        if !result.l1_hit {
            self.trace
                .push(self.cycle, TraceEvent::Cache { level: CacheLevel::L2, hit: result.l2_hit });
        }
    }

    // ------------------------------------------------------------ fetch

    fn fetch_stage(&mut self) {
        // Tiered: once the ROI closes, fetch stops so the machine drains
        // to a quiesced point and hands off to fast-forward; in-flight
        // work (including squash redirects) still settles `fetch_pc` on
        // the correct committed path first.
        if self.config.stepping == Stepping::Tiered && !self.tier_detailed {
            return;
        }
        if self.fetch_block != FetchBlock::None || self.cycle < self.fetch_stall_until {
            return;
        }
        for _ in 0..self.config.core.fetch_width {
            if self.frontend.len() >= self.config.core.frontend_queue {
                break;
            }
            let Some((inst, len)) = self.prog.try_fetch(self.fetch_pc) else {
                // Wrong-path garbage; wait for the squash that must come.
                self.fetch_block = FetchBlock::BadPc;
                break;
            };
            // Instruction-cache timing, one access per line transition.
            let line = self.fetch_pc / 64;
            if self.last_fetch_line != Some(line) {
                let r = self.hier.fetch_access(self.fetch_pc);
                self.trace_cache(CacheLevel::Il1, r);
                self.last_fetch_line = Some(line);
                if !r.l1_hit {
                    self.fetch_stall_until = self.cycle + r.latency;
                    break;
                }
            }

            let pc = self.fetch_pc;
            let next_seq = pc + len as Addr;
            let seq = self.seq_counter;
            self.seq_counter += 1;
            self.stats.fetched += 1;

            let mut fe = FrontendEntry {
                seq,
                pc,
                inst,
                len: len as u8,
                ready_cycle: self.cycle + 2, // decode pipeline depth
                pred_taken: false,
                pred_target: 0,
                ghr_before: self.bp.ghr(),
                ras_snapshot: None,
            };

            let mut next_pc = next_seq;
            let mut end_group = false;
            match inst.op {
                op if op.is_cond_branch() => {
                    if inst.is_sjmp() {
                        // Secure branch: not-taken path first, no predictor.
                        fe.pred_taken = false;
                        fe.pred_target = next_seq;
                    } else {
                        let (taken, ghr_before) = self.bp.predict_cond(pc);
                        fe.pred_taken = taken;
                        fe.ghr_before = ghr_before;
                        fe.pred_target = if taken { inst.branch_target(pc, len) } else { next_seq };
                        fe.ras_snapshot = Some(self.bp.ras_snapshot());
                        if taken {
                            next_pc = fe.pred_target;
                            end_group = true;
                        }
                    }
                }
                Opcode::Jal => {
                    if inst.rd == Reg::RA {
                        self.bp.on_call(next_seq);
                    }
                    next_pc = inst.branch_target(pc, len);
                    fe.pred_target = next_pc;
                    end_group = true;
                }
                Opcode::Jalr => {
                    let predicted = if inst.rd == Reg::X0 && inst.rs1 == Reg::RA {
                        self.bp.predict_return().unwrap_or(next_seq)
                    } else {
                        let (t, _) = self.bp.predict_indirect(pc);
                        if t == 0 {
                            next_seq
                        } else {
                            t
                        }
                    };
                    fe.pred_target = predicted;
                    fe.ras_snapshot = Some(self.bp.ras_snapshot());
                    next_pc = predicted;
                    end_group = true;
                }
                Opcode::EosJmp => {
                    self.fetch_block = FetchBlock::Eos;
                    end_group = true;
                }
                Opcode::Halt => {
                    self.fetch_block = FetchBlock::Halt;
                    end_group = true;
                }
                _ => {}
            }

            self.frontend.push_back(fe);
            self.fetch_pc = next_pc;
            if end_group {
                break;
            }
        }
    }

    // ----------------------------------------------------------- rename

    fn requires_iq(inst: &Inst) -> bool {
        !matches!(inst.op, Opcode::Nop | Opcode::Halt | Opcode::EosJmp)
    }

    fn iq_class(inst: &Inst) -> IqClass {
        if inst.op.is_fp() {
            IqClass::Fp
        } else {
            IqClass::Int
        }
    }

    /// Can the frontend's next instruction rename this cycle? The single
    /// source of truth for the rename stage's structural hazards, shared
    /// by `rename_stage` (which acts on it) and `rename_wake` (which
    /// reports quiescence from it) so the two can never disagree.
    fn rename_gate(&self, inst: &Inst) -> RenameGate {
        if self.rob.is_full() {
            return RenameGate::Blocked;
        }
        if Self::requires_iq(inst) {
            let (occupancy, cap) = match Self::iq_class(inst) {
                IqClass::Int => (self.iq_count_int, self.config.core.int_iq_entries),
                IqClass::Fp => (self.iq_count_fp, self.config.core.fp_iq_entries),
            };
            if occupancy >= cap {
                return RenameGate::Blocked;
            }
        }
        if inst.op.is_load() && !self.lsq.can_alloc_load() {
            return RenameGate::Blocked;
        }
        if inst.op.is_store() && !self.lsq.can_alloc_store() {
            return RenameGate::Blocked;
        }
        let is_sjmp_active = inst.is_sjmp() && self.config.mode == SecurityMode::Sempe;
        if is_sjmp_active && !self.unit.can_issue_sjmp() {
            // Either a transient stall (the previous sJMP has not
            // committed its jbTable entry yet, or a wrong path will be
            // squashed) or a genuine nesting overflow. It is genuine
            // exactly when nothing older remains that could squash us:
            // the paper makes this a run-time exception (§IV-E).
            if self.unit.jbtable().depth() >= self.unit.jbtable().capacity() && self.rob.is_empty()
            {
                return RenameGate::NestingFault;
            }
            return RenameGate::Blocked;
        }
        if let Some(rd) = inst.dest() {
            let free =
                if rd.is_fp() { self.rename.free_fp_count() } else { self.rename.free_int_count() };
            if free == 0 {
                return RenameGate::Blocked;
            }
        }
        RenameGate::Proceed
    }

    fn rename_stage(&mut self) -> Result<(), SimError> {
        if self.cycle < self.rename_stall_until || self.rename_blocked_on.is_some() {
            self.stats.drain_stall_cycles += 1;
            return Ok(());
        }
        for _ in 0..self.config.core.rename_width {
            let Some(fe) = self.frontend.front() else { break };
            if fe.ready_cycle > self.cycle {
                break;
            }
            let inst = fe.inst;
            match self.rename_gate(&inst) {
                RenameGate::Blocked => break,
                RenameGate::NestingFault => {
                    return Err(SimError::Sempe(SempeFault::NestingOverflow {
                        capacity: self.unit.jbtable().capacity(),
                    }));
                }
                RenameGate::Proceed => {}
            }
            let is_sjmp_active = inst.is_sjmp() && self.config.mode == SecurityMode::Sempe;

            let fe = self.frontend.pop_front().expect("peeked above");
            let mut entry = RobEntry::new(fe.seq, fe.pc, inst, fe.len);
            entry.pred_taken = fe.pred_taken;
            entry.pred_target = fe.pred_target;
            entry.ghr_before = fe.ghr_before;
            entry.ras_snapshot = fe.ras_snapshot;

            // Sources resolve against the pre-rename RAT.
            let srcs = inst.sources();
            let rs1 = srcs[0].map(|r| self.rename.map(r));
            let rs2 = srcs[1].map(|r| self.rename.map(r));
            let old_dest = if inst.reads_dest() && !inst.rd.is_zero() {
                Some(self.rename.map(inst.rd))
            } else {
                None
            };
            if let Some(rd) = inst.dest() {
                let (fresh, old) = self.rename.rename_dest(rd).expect("gated above");
                entry.phys_dest = Some(fresh);
                entry.old_phys = Some(old);
            }
            if inst.op.is_store() {
                entry.store_id = Some(self.lsq.alloc_store(fe.seq));
            }
            if inst.op.is_load() {
                self.lsq.alloc_load();
            }
            // Squash-recovery checkpoints for everything that can
            // mispredict.
            let can_mispredict =
                (inst.op.is_cond_branch() && !is_sjmp_active) || inst.op == Opcode::Jalr;
            if can_mispredict {
                entry.rat_checkpoint = Some(Box::new(self.rename.checkpoint()));
            }
            if is_sjmp_active {
                self.unit.on_sjmp_issue()?;
                entry.is_sjmp = true;
            }

            let needs_iq = Self::requires_iq(&inst);
            if !needs_iq {
                entry.done = true;
            }
            let seq = entry.seq;
            let slot = self.rob.push(entry).expect("gated above");
            if needs_iq {
                let iq_entry = IqEntry { seq, slot, rs1, rs2, old_dest };
                self.iq_insert(Self::iq_class(&inst), iq_entry);
            }
            self.stats.renamed += 1;

            if is_sjmp_active && self.config.sempe.drains_enabled {
                // Drain #1: nothing younger renames until the sJMP commits
                // and the initial snapshot is in the scratchpad. The
                // drainless ablation (insecure: a real part could not
                // snapshot a moving register file) skips the block.
                self.rename_blocked_on = Some(seq);
                break;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------ issue

    fn op_latency(&self, op: Opcode) -> u64 {
        let l = &self.config.lat;
        match op {
            Opcode::Mul => l.mul,
            Opcode::Div | Opcode::Rem | Opcode::Divu | Opcode::Remu => l.div,
            Opcode::Fadd | Opcode::Fsub => l.fp_add,
            Opcode::Fmul => l.fp_mul,
            Opcode::Fdiv => l.fp_div,
            op if op.is_cond_branch() => l.branch,
            Opcode::Jal | Opcode::Jalr => l.branch,
            _ => l.alu,
        }
    }

    /// Reference readiness check; the wakeup machinery must agree with it
    /// (asserted in debug builds at selection time).
    fn entry_ready(&self, e: &IqEntry) -> bool {
        [e.rs1, e.rs2, e.old_dest].iter().flatten().all(|p| self.rename.is_ready(*p))
    }

    /// Insert a renamed µop into the issue queues, registering wakeup
    /// records for every source register that is not yet ready.
    fn iq_insert(&mut self, class: IqClass, entry: IqEntry) {
        let seq = entry.seq;
        let srcs = [entry.rs1, entry.rs2, entry.old_dest];
        let slot = IqSlot { class, pending: 0, active: true, entry };
        let idx = match self.iq_free.pop() {
            Some(i) => {
                self.iq_slots[i as usize] = slot;
                i
            }
            None => {
                self.iq_slots.push(slot);
                u32::try_from(self.iq_slots.len() - 1).expect("slab fits u32")
            }
        };
        let mut pending = 0u8;
        for p in srcs.into_iter().flatten() {
            if !self.rename.is_ready(p) {
                pending += 1;
                self.reg_waiters[p as usize].push((idx, seq));
            }
        }
        self.iq_slots[idx as usize].pending = pending;
        match class {
            IqClass::Int => self.iq_count_int += 1,
            IqClass::Fp => self.iq_count_fp += 1,
        }
        if pending == 0 {
            match class {
                IqClass::Int => self.iq_ready_int.push((idx, seq)),
                IqClass::Fp => self.iq_ready_fp.push((idx, seq)),
            }
        }
    }

    /// A physical register was written back: wake the µops waiting on it.
    fn wake_reg(&mut self, p: PhysReg) {
        if self.reg_waiters[p as usize].is_empty() {
            return;
        }
        let mut list = std::mem::take(&mut self.reg_waiters[p as usize]);
        for (idx, seq) in list.drain(..) {
            let slot = &mut self.iq_slots[idx as usize];
            if !slot.active || slot.entry.seq != seq {
                continue; // squashed (and possibly reused) since it slept
            }
            slot.pending -= 1;
            if slot.pending == 0 {
                match slot.class {
                    IqClass::Int => self.iq_ready_int.push((idx, seq)),
                    IqClass::Fp => self.iq_ready_fp.push((idx, seq)),
                }
            }
        }
        // Hand the (empty) buffer back so its capacity is reused.
        self.reg_waiters[p as usize] = list;
    }

    /// Release an issue-queue slot (issue or squash).
    fn iq_release(&mut self, idx: u32) {
        let slot = &mut self.iq_slots[idx as usize];
        debug_assert!(slot.active);
        slot.active = false;
        match slot.class {
            IqClass::Int => self.iq_count_int -= 1,
            IqClass::Fp => self.iq_count_fp -= 1,
        }
        self.iq_free.push(idx);
    }

    fn issue_stage(&mut self) {
        if self.iq_ready_int.is_empty() && self.iq_ready_fp.is_empty() {
            return;
        }
        // Select among the ready entries only, oldest first — the same
        // candidate set the old full-queue scan produced, assembled in a
        // reusable scratch buffer.
        let mut candidates = std::mem::take(&mut self.issue_candidates);
        candidates.clear();
        for &(idx, seq) in self.iq_ready_int.iter().chain(&self.iq_ready_fp) {
            let slot = &self.iq_slots[idx as usize];
            if slot.active && slot.entry.seq == seq {
                debug_assert!(self.entry_ready(&slot.entry), "ready list out of sync");
                candidates.push((seq, idx));
            }
        }
        candidates.sort_unstable_by_key(|(seq, _)| *seq);

        let mut issued_total = 0usize;
        let mut issued_loads = 0usize;
        for &(seq, idx) in &candidates {
            if issued_total >= self.config.core.issue_width {
                break;
            }
            let entry = &self.iq_slots[idx as usize].entry;
            let Some(rob_entry) = self.rob.get(entry.slot) else { continue };
            if rob_entry.seq != seq {
                continue;
            }
            if rob_entry.inst.op.is_load() {
                if issued_loads >= self.config.core.load_issue_width {
                    continue;
                }
                issued_loads += 1;
            }
            // Dividers are single, non-pipelined units (structural
            // hazard): one op occupies the unit for its full latency.
            match rob_entry.inst.op {
                Opcode::Div | Opcode::Rem | Opcode::Divu | Opcode::Remu => {
                    if self.cycle < self.int_div_busy_until {
                        continue;
                    }
                    self.int_div_busy_until = self.cycle + self.config.lat.div;
                }
                Opcode::Fdiv => {
                    if self.cycle < self.fp_div_busy_until {
                        continue;
                    }
                    self.fp_div_busy_until = self.cycle + self.config.lat.fp_div;
                }
                _ => {}
            }
            let iq_entry = entry.clone();
            self.execute_uop(&iq_entry);
            self.iq_release(idx);
            issued_total += 1;
            self.stats.issued += 1;
        }
        // Drop consumed/stale ready records (issued or squashed slots).
        let slots = &self.iq_slots;
        let live = |&(idx, seq): &(u32, u64)| {
            let s = &slots[idx as usize];
            s.active && s.entry.seq == seq
        };
        self.iq_ready_int.retain(live);
        self.iq_ready_fp.retain(live);
        self.issue_candidates = candidates;
    }

    /// Enqueue a completion. Events are scheduled by stages that run
    /// *after* the complete stage within a tick, so the earliest a new
    /// event can fire is the next cycle — clamping keeps that invariant
    /// explicit (and preserves the old scan semantics for hypothetical
    /// zero-latency configurations).
    fn schedule(&mut self, mut ev: Completion) {
        ev.cycle = ev.cycle.max(self.cycle + 1);
        self.events.push(Reverse(ev));
    }

    /// Begin execution of one µop: compute functionally, schedule its
    /// completion.
    fn execute_uop(&mut self, iq: &IqEntry) {
        let read = |p: Option<PhysReg>| p.map_or(0, |p| self.rename.value(p));
        let v1 = read(iq.rs1);
        let v2 = read(iq.rs2);
        let vold = read(iq.old_dest);
        let Some(entry) = self.rob.get(iq.slot) else { return };
        let inst = entry.inst;
        let pc = entry.pc;
        let len = entry.len as usize;
        let next_pc = entry.next_pc();
        let phys_dest = entry.phys_dest;
        let store_id = entry.store_id;
        let seq = iq.seq;
        let slot = iq.slot;
        let lat = self.op_latency(inst.op);

        match inst.op {
            op if op.is_load() => {
                let addr = v1.wrapping_add(inst.imm as u64);
                if let Some(e) = self.rob.get_checked(slot, seq) {
                    e.mem_addr = addr;
                }
                self.start_load(seq, slot, pc, addr, inst, phys_dest, self.config.lat.agu);
            }
            op if op.is_store() => {
                let addr = v1.wrapping_add(inst.imm as u64);
                let width = access_width(op) as u8;
                if let Some(e) = self.rob.get_checked(slot, seq) {
                    e.mem_addr = addr;
                }
                self.schedule(Completion {
                    cycle: self.cycle + self.config.lat.agu,
                    seq,
                    slot,
                    kind: CompletionKind::StoreResolve {
                        id: store_id.expect("stores carry an id"),
                        addr,
                        data: v2,
                        width,
                    },
                });
            }
            op if op.is_cond_branch() => {
                let taken = branch_taken(op, v1, v2);
                let target = inst.branch_target(pc, len);
                let actual_target = if taken { target } else { next_pc };
                if let Some(e) = self.rob.get_checked(slot, seq) {
                    e.actual_taken = taken;
                    // For an sJMP the jbTable consumes the *taken-path*
                    // entry address whatever the outcome.
                    e.actual_target = if e.is_sjmp { target } else { actual_target };
                    e.mispredicted = !e.is_sjmp && taken != e.pred_taken;
                }
                self.schedule(Completion {
                    cycle: self.cycle + lat,
                    seq,
                    slot,
                    kind: CompletionKind::BranchResolve { write: None },
                });
            }
            Opcode::Jal => {
                if let Some(e) = self.rob.get_checked(slot, seq) {
                    e.actual_taken = true;
                    e.actual_target = inst.branch_target(pc, len);
                    e.mispredicted = false;
                }
                self.schedule(Completion {
                    cycle: self.cycle + lat,
                    seq,
                    slot,
                    kind: CompletionKind::BranchResolve { write: phys_dest.map(|p| (p, next_pc)) },
                });
            }
            Opcode::Jalr => {
                let target = v1.wrapping_add(inst.imm as u64);
                if let Some(e) = self.rob.get_checked(slot, seq) {
                    e.actual_taken = true;
                    e.actual_target = target;
                    e.mispredicted = target != e.pred_target;
                }
                self.schedule(Completion {
                    cycle: self.cycle + lat,
                    seq,
                    slot,
                    kind: CompletionKind::BranchResolve { write: phys_dest.map(|p| (p, next_pc)) },
                });
            }
            _ => {
                // Computational op.
                let b = match inst.op.format() {
                    Format::R3 => v2,
                    _ => inst.imm as u64,
                };
                match eval_op(&inst, v1, b, vold) {
                    Ok(value) => {
                        let kind = match phys_dest {
                            Some(p) => CompletionKind::Write { phys: p, value },
                            None => CompletionKind::Nothing,
                        };
                        self.schedule(Completion { cycle: self.cycle + lat, seq, slot, kind });
                    }
                    Err(IntFault::DivideByZero) => {
                        if let Some(e) = self.rob.get_checked(slot, seq) {
                            e.exception = Some(ExecError::DivideByZero { pc });
                        }
                        self.schedule(Completion {
                            cycle: self.cycle + lat,
                            seq,
                            slot,
                            kind: CompletionKind::Nothing,
                        });
                    }
                }
            }
        }
    }

    /// Run the LSQ check for a load and schedule its completion (or a
    /// replay).
    #[allow(clippy::too_many_arguments)] // pipeline-stage plumbing
    fn start_load(
        &mut self,
        seq: u64,
        slot: RobSlot,
        pc: Addr,
        addr: Addr,
        inst: Inst,
        phys_dest: Option<PhysReg>,
        agu: u64,
    ) {
        let width = access_width(inst.op) as u8;
        match self.lsq.check_load(seq, addr, width) {
            LoadCheck::Wait => {
                self.stats.load_replays += 1;
                self.replay.push((seq, slot));
            }
            LoadCheck::Forward(value) => {
                self.schedule(Completion {
                    cycle: self.cycle + agu + 1,
                    seq,
                    slot,
                    kind: CompletionKind::LoadDone {
                        phys: phys_dest.expect("loads have destinations"),
                        value,
                    },
                });
            }
            LoadCheck::Proceed => {
                let value = match width {
                    1 => u64::from(self.mem.read_u8(addr)),
                    4 => u64::from(self.mem.read_u32(addr)),
                    _ => self.mem.read_u64(addr),
                };
                let r = self.hier.data_access(pc, addr, false);
                self.trace_cache(CacheLevel::Dl1, r);
                self.schedule(Completion {
                    cycle: self.cycle + agu + r.latency,
                    seq,
                    slot,
                    kind: CompletionKind::LoadDone {
                        phys: phys_dest.expect("loads have destinations"),
                        value,
                    },
                });
            }
        }
    }

    fn replay_loads(&mut self) {
        if self.replay.is_empty() {
            return;
        }
        // Every waiting load already saw the current store queue and got
        // `Wait`; until the queue changes, a re-check is guaranteed to
        // return `Wait` again, so the whole pass can be skipped without
        // affecting timing.
        if self.lsq.version() == self.replay_lsq_version {
            return;
        }
        self.replay_lsq_version = self.lsq.version();
        // Swap with the scratch buffer so both vectors keep their
        // capacity: start_load may push fresh replays while we drain.
        std::mem::swap(&mut self.replay, &mut self.replay_scratch);
        let mut pending = std::mem::take(&mut self.replay_scratch);
        for (seq, slot) in pending.drain(..) {
            let Some(entry) = self.rob.get(slot) else { continue };
            if entry.seq != seq {
                continue;
            }
            let inst = entry.inst;
            let pc = entry.pc;
            let addr = entry.mem_addr;
            let phys_dest = entry.phys_dest;
            // Replays already paid the AGU.
            self.start_load(seq, slot, pc, addr, inst, phys_dest, 0);
        }
        self.replay_scratch = pending;
    }

    // --------------------------------------------------------- complete

    fn complete_stage(&mut self) {
        let now = self.cycle;
        // Fast path: nothing due this cycle — one heap peek, no scan.
        match self.events.peek() {
            Some(Reverse(e)) if e.cycle <= now => {}
            _ => return,
        }
        // Pop everything due and process it in program (seq) order, the
        // order the old full-scan implementation used. The heap yields
        // (cycle, seq)-sorted events, which is seq-sorted only within a
        // single cycle's batch, so re-sort the (tiny) due set.
        let mut due = std::mem::take(&mut self.due_scratch);
        due.clear();
        while let Some(Reverse(e)) = self.events.peek() {
            if e.cycle > now {
                break;
            }
            due.push(self.events.pop().expect("peeked").0);
        }
        due.sort_unstable_by_key(|e| e.seq);
        for ev in due.drain(..) {
            // Validate against squashes that happened since scheduling.
            if self.rob.get_checked(ev.slot, ev.seq).is_none() {
                if let CompletionKind::LoadDone { .. } = ev.kind {
                    // The load slot was already released by the squash.
                }
                continue;
            }
            match ev.kind {
                CompletionKind::Write { phys, value } => {
                    self.rename.write(phys, value);
                    self.wake_reg(phys);
                    if let Some(e) = self.rob.get_checked(ev.slot, ev.seq) {
                        e.done = true;
                    }
                }
                CompletionKind::LoadDone { phys, value } => {
                    self.rename.write(phys, value);
                    self.wake_reg(phys);
                    self.lsq.release_load();
                    if let Some(e) = self.rob.get_checked(ev.slot, ev.seq) {
                        e.done = true;
                    }
                }
                CompletionKind::StoreResolve { id, addr, data, width } => {
                    self.lsq.resolve_store(id, addr, data, width);
                    if let Some(e) = self.rob.get_checked(ev.slot, ev.seq) {
                        e.done = true;
                    }
                }
                CompletionKind::BranchResolve { write } => {
                    if let Some((p, v)) = write {
                        self.rename.write(p, v);
                        self.wake_reg(p);
                    }
                    let (mispredicted, _actual_taken) = {
                        let e = self.rob.get_checked(ev.slot, ev.seq).expect("validated above");
                        e.done = true;
                        (e.mispredicted, e.actual_taken)
                    };
                    if mispredicted {
                        self.squash_from(ev.slot, ev.seq);
                    }
                }
                CompletionKind::Nothing => {
                    if let Some(e) = self.rob.get_checked(ev.slot, ev.seq) {
                        e.done = true;
                    }
                }
            }
        }
        self.due_scratch = due;
    }

    /// Squash everything younger than the mispredicting branch in `slot`
    /// and restart fetch down the correct path.
    fn squash_from(&mut self, slot: RobSlot, seq: u64) {
        self.stats.squashes += 1;
        let (redirect_to, ghr_before, ras, is_cond, actual_taken) = {
            let e = self.rob.get(slot).expect("squash source exists");
            debug_assert_eq!(e.seq, seq);
            (
                e.actual_target,
                e.ghr_before,
                e.ras_snapshot.clone().unwrap_or_default(),
                e.inst.op.is_cond_branch(),
                e.actual_taken,
            )
        };
        let removed = self.rob.squash_younger(seq);
        for dead in &removed {
            if let Some(p) = dead.phys_dest {
                self.rename.free(p);
            }
            if dead.inst.op.is_load() && !dead.done {
                // Its LQ slot is still held iff the load hasn't completed.
                // Completed loads released at LoadDone; pending replays or
                // in-flight cache accesses still hold a slot.
                self.lsq.release_load();
            }
            if dead.is_sjmp {
                self.unit.on_sjmp_squash();
            }
        }
        // Restore the RAT from the branch's checkpoint.
        let cp = {
            let e = self.rob.get(slot).expect("still present");
            *e.rat_checkpoint.as_ref().expect("mispredicting ops carry checkpoints").clone()
        };
        self.rename.restore(&cp);
        // Drop queue state belonging to squashed µops. Ready lists and
        // waiter records referring to released slots invalidate lazily
        // via their (slot, seq) tags.
        for idx in 0..self.iq_slots.len() {
            if self.iq_slots[idx].active && self.iq_slots[idx].entry.seq > seq {
                self.iq_release(idx as u32);
            }
        }
        self.replay.retain(|(s, _)| *s <= seq);
        // Squashes are rare (once per mispredict); an O(n) heap rebuild
        // here is cheap next to the per-cycle scan it replaced.
        self.events.retain(|Reverse(e)| e.seq <= seq);
        self.lsq.squash_younger(seq);
        self.frontend.clear();
        // Predictor recovery.
        if is_cond {
            self.bp.recover_cond(ghr_before, actual_taken, &ras);
        } else {
            self.bp.recover_indirect(ghr_before, &ras);
        }
        // Rename block held by a squashed sJMP dissolves.
        if self.rename_blocked_on.is_some_and(|b| b > seq) {
            self.rename_blocked_on = None;
        }
        // Fetch restart.
        self.fetch_pc = redirect_to;
        self.fetch_block = FetchBlock::None;
        self.last_fetch_line = None;
        self.fetch_stall_until = self.cycle + self.config.core.mispredict_penalty;
        self.trace_event(TraceEvent::Redirect { target: redirect_to });
    }

    // ------------------------------------------------------------ commit

    fn commit_stage(&mut self) -> Result<(), SimError> {
        for _ in 0..self.config.core.retire_width {
            let Some(head) = self.rob.head() else { break };
            if !head.done {
                break;
            }
            if let Some(fault) = head.exception.clone() {
                // An architectural fault reached commit: in a SecBlock the
                // paper routes this to the exception handler (§IV-G); we
                // surface it either way.
                if self.unit.in_secure_region() {
                    return Err(SimError::Sempe(SempeFault::FaultInSecBlock {
                        pc: head.pc,
                        what: fault.to_string(),
                    }));
                }
                return Err(SimError::Exec(fault));
            }

            let entry = self.rob.pop_head().expect("head exists");
            self.last_commit_cycle = self.cycle;
            self.stats.committed += 1;
            if self.unit.in_secure_region() {
                self.stats.secure_committed += 1;
            }
            // Explicit measurement window: ROI opens at the commit of
            // instruction `skip + 1` and closes at `skip + insts`.
            // Commit-anchored, so the accounting is identical across
            // stepping modes (skip never moves commit cycles).
            if let Roi::Window { skip, insts } = self.config.roi {
                if insts > 0 {
                    if self.stats.committed == skip.saturating_add(1) {
                        self.roi_open_cycle = Some(self.cycle);
                    }
                    if self.stats.committed == skip.saturating_add(insts) {
                        self.close_roi_span();
                        if self.config.stepping == Stepping::Tiered {
                            self.tier_detailed = !self.ff_permitted();
                        }
                    }
                }
            }
            self.trace_event(TraceEvent::Commit { pc: entry.pc });

            // Register state.
            if let Some(p) = entry.phys_dest {
                let rd = entry.inst.rd;
                debug_assert!(self.rename.is_ready(p), "commit of not-ready dest");
                self.arch_regs[rd.index()] = self.rename.value(p);
                if self.unit.in_secure_region() {
                    self.unit.note_commit_write(rd);
                }
            }
            if let Some(old) = entry.old_phys {
                self.rename.free(old);
            }

            // Memory state.
            if entry.inst.op.is_load() {
                self.trace_event(TraceEvent::MemRead { addr: entry.mem_addr });
            }
            if let Some(id) = entry.store_id {
                let s = self.lsq.commit_store(id).expect("store present at commit");
                let addr = s.addr.expect("resolved before done");
                match s.width {
                    1 => self.mem.write_u8(addr, s.data as u8),
                    4 => self.mem.write_u32(addr, s.data as u32),
                    _ => self.mem.write_u64(addr, s.data),
                }
                let r = self.hier.data_access(entry.pc, addr, true);
                self.trace_cache(CacheLevel::Dl1, r);
                self.trace_event(TraceEvent::MemWrite { addr });
            }

            // Control state.
            match entry.inst.op {
                op if op.is_cond_branch() => {
                    if entry.is_sjmp {
                        let was_outside = !self.unit.in_secure_region();
                        // Secure branch: no predictor interaction at all.
                        let eff = self.unit.on_sjmp_commit(
                            entry.actual_target,
                            entry.actual_taken,
                            &self.arch_regs,
                        )?;
                        // An outermost sJMP commit opens an ROI span.
                        if was_outside && self.config.roi == Roi::Regions {
                            self.roi_open_cycle = Some(self.cycle);
                        }
                        // Drain #1 + initial snapshot spill: rename resumes
                        // after the scratchpad transfer. The drainless
                        // ablation overlaps the spill with execution.
                        if self.config.sempe.drains_enabled {
                            debug_assert!(self.rename_blocked_on == Some(entry.seq));
                            self.rename_blocked_on = None;
                            self.rename_stall_until = self.cycle + eff.spm_cycles;
                        }
                        break; // region boundary: stop committing this cycle
                    } else {
                        self.bp.commit_cond(entry.pc, entry.ghr_before, entry.actual_taken);
                        self.trace_event(TraceEvent::BpredUpdate {
                            pc: entry.pc,
                            taken: entry.actual_taken,
                        });
                    }
                }
                Opcode::Jalr => {
                    let is_ret = entry.inst.rd == Reg::X0 && entry.inst.rs1 == Reg::RA;
                    if !is_ret {
                        self.bp.commit_indirect(entry.pc, entry.ghr_before, entry.actual_target);
                    }
                }
                Opcode::EosJmp => {
                    debug_assert!(self.rob.is_empty(), "eosJMP commits into a drained window");
                    let eff = self.unit.on_eosjmp_commit(&mut self.arch_regs)?;
                    // Resynchronize the physical file with the restored
                    // architectural state (window is empty, so this is the
                    // hardware's RAT rebuild).
                    for r in Reg::all() {
                        self.rename.poke_arch(r, self.arch_regs[r.index()]);
                    }
                    let target = eff.redirect.unwrap_or_else(|| entry.next_pc());
                    self.fetch_pc = target;
                    self.fetch_block = FetchBlock::None;
                    self.last_fetch_line = None;
                    self.fetch_stall_until =
                        self.cycle + self.config.core.eos_redirect_penalty + eff.spm_cycles;
                    self.trace_event(TraceEvent::Redirect { target });
                    // The eosJMP that returns to depth zero closes the
                    // region's ROI span, and (tiered) re-opens the
                    // fast-forward gate unless an explicit window says
                    // otherwise. The machine is quiesced right after
                    // this commit — the natural handoff point.
                    if !self.unit.in_secure_region() {
                        if self.config.roi == Roi::Regions {
                            self.close_roi_span();
                        }
                        if self.config.stepping == Stepping::Tiered {
                            self.tier_detailed = !self.ff_permitted();
                        }
                    }
                    break; // drain boundary
                }
                Opcode::Halt => {
                    self.halted = true;
                    self.trace.total_cycles = self.cycle;
                    // A HALT inside an open ROI (window never closed, or
                    // a region left unterminated) closes the span here
                    // so partial ROIs are still accounted.
                    self.close_roi_span();
                    break;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Close the currently open ROI span (if any) at the current cycle:
    /// account `roi_cycles` and record the span.
    fn close_roi_span(&mut self) {
        if let Some(open) = self.roi_open_cycle.take() {
            self.stats.roi_cycles += self.cycle - open;
            self.roi_spans.push((open, self.cycle));
        }
    }
}

/// A self-contained snapshot of a quiesced [`Simulator`]: full
/// architectural state (registers, memory) plus every persistent piece
/// of microarchitectural state (RAT and physical register files, branch
/// predictor tables, cache hierarchy and prefetchers, SeMPE unit,
/// statistics baseline, observation trace) and the shared decoded
/// program.
///
/// Created by [`Simulator::checkpoint`]; consumed by
/// [`Simulator::restore_from`] / [`Simulator::from_checkpoint`]. Share
/// one checkpoint (e.g. behind an `Arc`) across a worker pool and every
/// worker forks trials from it without re-parsing, re-compiling,
/// re-decoding, or re-growing a simulator.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    config: SimConfig,
    prog: Arc<DecodedProgram>,
    mem: MemSnapshot,
    cycle: u64,
    seq_counter: u64,
    halted: bool,
    fetch_pc: Addr,
    fetch_stall_until: u64,
    fetch_block: FetchBlock,
    last_fetch_line: Option<u64>,
    bp: BranchPredictor,
    rename: RenameState,
    rename_stall_until: u64,
    int_div_busy_until: u64,
    fp_div_busy_until: u64,
    lsq_forwards: u64,
    hier: MemHierarchy,
    arch_regs: [u64; NUM_ARCH_REGS],
    unit: SempeUnit,
    tier_detailed: bool,
    roi_open_cycle: Option<u64>,
    roi_spans: Vec<(u64, u64)>,
    trace: ObservationTrace,
    stats: SimStats,
    last_commit_cycle: u64,
}

impl Checkpoint {
    /// The configuration the checkpointed machine runs under.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The shared decoded program.
    #[must_use]
    pub fn decoded(&self) -> &Arc<DecodedProgram> {
        &self.prog
    }

    /// Pages captured in the memory snapshot.
    #[must_use]
    pub fn mem_pages(&self) -> usize {
        self.mem.page_count()
    }
}
