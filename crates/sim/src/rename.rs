//! Register renaming: the register alias table (RAT), the physical
//! register files (256 INT + 256 FP per Table II), free lists, and ready
//! bits. Branch recovery uses RAT checkpoints taken at rename.

use sempe_isa::reg::{Reg, NUM_ARCH_REGS};

/// A physical register name. Integer physical registers occupy indices
/// `0..int_count`; floating-point ones `int_count..int_count+fp_count`.
pub type PhysReg = u16;

/// A snapshot of the RAT for squash recovery.
pub type RatCheckpoint = [PhysReg; NUM_ARCH_REGS];

/// Rename state: RAT + physical register files + free lists.
#[derive(Debug, Clone)]
pub struct RenameState {
    rat: RatCheckpoint,
    vals: Vec<u64>,
    ready: Vec<bool>,
    free_int: Vec<PhysReg>,
    free_fp: Vec<PhysReg>,
    int_count: usize,
}

impl RenameState {
    /// Build rename state with the given pool sizes, mapping every
    /// architectural register to a ready physical register holding
    /// `initial[arch]`.
    ///
    /// # Panics
    ///
    /// Panics if either pool is too small to map the architectural state
    /// (needs ≥ 32 INT and ≥ 16 FP).
    #[must_use]
    pub fn new(int_count: usize, fp_count: usize, initial: &[u64; NUM_ARCH_REGS]) -> Self {
        assert!(int_count >= 32 && fp_count >= 16, "physical pools too small");
        let total = int_count + fp_count;
        let mut state = RenameState {
            rat: [0; NUM_ARCH_REGS],
            vals: vec![0; total],
            ready: vec![false; total],
            free_int: (0..int_count as PhysReg).rev().collect(),
            free_fp: (int_count as PhysReg..total as PhysReg).rev().collect(),
            int_count,
        };
        for r in Reg::all() {
            let p = state.alloc(r.is_fp()).expect("pool sized above");
            state.rat[r.index()] = p;
            state.vals[p as usize] = initial[r.index()];
            state.ready[p as usize] = true;
        }
        state
    }

    /// Is `p` a floating-point physical register?
    #[must_use]
    pub fn is_fp_phys(&self, p: PhysReg) -> bool {
        (p as usize) >= self.int_count
    }

    /// Free integer registers remaining.
    #[must_use]
    pub fn free_int_count(&self) -> usize {
        self.free_int.len()
    }

    /// Free FP registers remaining.
    #[must_use]
    pub fn free_fp_count(&self) -> usize {
        self.free_fp.len()
    }

    /// Current mapping of an architectural register.
    #[must_use]
    pub fn map(&self, r: Reg) -> PhysReg {
        self.rat[r.index()]
    }

    /// Allocate a physical register from the matching pool.
    pub fn alloc(&mut self, fp: bool) -> Option<PhysReg> {
        if fp {
            self.free_fp.pop()
        } else {
            self.free_int.pop()
        }
    }

    /// Rename `rd` to a fresh physical register. Returns
    /// `(new, previous)`; the previous mapping is freed when the renaming
    /// instruction commits, or re-installed if it squashes.
    pub fn rename_dest(&mut self, rd: Reg) -> Option<(PhysReg, PhysReg)> {
        let fresh = self.alloc(rd.is_fp())?;
        self.ready[fresh as usize] = false;
        let old = self.rat[rd.index()];
        self.rat[rd.index()] = fresh;
        Some((fresh, old))
    }

    /// Return a register to its free list.
    pub fn free(&mut self, p: PhysReg) {
        if self.is_fp_phys(p) {
            self.free_fp.push(p);
        } else {
            self.free_int.push(p);
        }
    }

    /// Value of a physical register.
    #[must_use]
    pub fn value(&self, p: PhysReg) -> u64 {
        self.vals[p as usize]
    }

    /// Is the physical register's value available?
    #[must_use]
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p as usize]
    }

    /// Write a produced value and mark it ready (writeback).
    pub fn write(&mut self, p: PhysReg, val: u64) {
        self.vals[p as usize] = val;
        self.ready[p as usize] = true;
    }

    /// Overwrite the value of an architectural register *through the RAT*
    /// — used to resynchronize the physical file with the committed state
    /// after a SeMPE register restore, when the pipeline is drained.
    pub fn poke_arch(&mut self, r: Reg, val: u64) {
        let p = self.rat[r.index()];
        self.vals[p as usize] = val;
        self.ready[p as usize] = true;
    }

    /// Snapshot the RAT (taken after renaming a branch).
    #[must_use]
    pub fn checkpoint(&self) -> RatCheckpoint {
        self.rat
    }

    /// Restore the RAT from a checkpoint (squash recovery). The caller
    /// frees the squashed instructions' destinations separately.
    pub fn restore(&mut self, cp: &RatCheckpoint) {
        self.rat = *cp;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> RenameState {
        let mut init = [0u64; NUM_ARCH_REGS];
        init[2] = 0x7FFF_0000; // sp
        RenameState::new(256, 256, &init)
    }

    #[test]
    fn initial_mappings_hold_initial_values() {
        let s = fresh();
        let sp = s.map(Reg::SP);
        assert!(s.is_ready(sp));
        assert_eq!(s.value(sp), 0x7FFF_0000);
        assert_eq!(s.free_int_count(), 256 - 32);
        assert_eq!(s.free_fp_count(), 256 - 16);
    }

    #[test]
    fn rename_allocates_and_remaps() {
        let mut s = fresh();
        let old = s.map(Reg::x(5));
        let (fresh_p, prev) = s.rename_dest(Reg::x(5)).unwrap();
        assert_eq!(prev, old);
        assert_ne!(fresh_p, old);
        assert_eq!(s.map(Reg::x(5)), fresh_p);
        assert!(!s.is_ready(fresh_p), "fresh destination starts not-ready");
        s.write(fresh_p, 42);
        assert!(s.is_ready(fresh_p));
        assert_eq!(s.value(fresh_p), 42);
    }

    #[test]
    fn fp_and_int_pools_are_separate() {
        let mut s = fresh();
        let (pi, _) = s.rename_dest(Reg::x(3)).unwrap();
        let (pf, _) = s.rename_dest(Reg::f(3)).unwrap();
        assert!(!s.is_fp_phys(pi));
        assert!(s.is_fp_phys(pf));
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let init = [0u64; NUM_ARCH_REGS];
        let mut s = RenameState::new(33, 16, &init);
        assert!(s.rename_dest(Reg::x(1)).is_some()); // uses the last free one
        assert!(s.rename_dest(Reg::x(2)).is_none());
    }

    #[test]
    fn checkpoint_restore_recovers_mappings() {
        let mut s = fresh();
        let cp = s.checkpoint();
        let (p1, _) = s.rename_dest(Reg::x(7)).unwrap();
        let (_p2, _) = s.rename_dest(Reg::x(8)).unwrap();
        assert_ne!(s.map(Reg::x(7)), cp[7]);
        s.restore(&cp);
        assert_eq!(s.map(Reg::x(7)), cp[7]);
        assert_eq!(s.map(Reg::x(8)), cp[8]);
        // Squashed destinations go back to the pool.
        let before = s.free_int_count();
        s.free(p1);
        assert_eq!(s.free_int_count(), before + 1);
    }

    #[test]
    fn poke_arch_updates_through_the_rat() {
        let mut s = fresh();
        s.poke_arch(Reg::x(9), 77);
        assert_eq!(s.value(s.map(Reg::x(9))), 77);
    }
}
