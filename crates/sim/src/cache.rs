//! Set-associative caches with LRU replacement, write-back/write-allocate
//! policy, and the two hardware prefetchers of Table II (stride at L1D,
//! stream at L2).
//!
//! Timing model: each access resolves to a total latency through the
//! hierarchy (L1 hit, L2 hit, or memory); misses fill every level on the
//! way back (inclusive fills). There is no MSHR limit — each in-flight
//! load carries its own latency — which slightly overestimates memory
//! parallelism but keeps the model deterministic and simple; the paper's
//! results depend on *relative* locality effects, which survive.

use sempe_isa::Addr;

use crate::config::{CacheConfig, MemConfig};
use crate::skip::Wake;

/// Per-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (prefetches excluded).
    pub accesses: u64,
    /// Demand misses.
    pub misses: u64,
    /// Lines installed by the prefetcher.
    pub prefetch_fills: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand miss rate in [0, 1].
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u64,
}

/// One set-associative cache level.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: usize,
    lines: Vec<Line>, // sets × ways
    lru_clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Build a cache with the given geometry.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        SetAssocCache {
            cfg,
            sets,
            lines: vec![Line::default(); sets * cfg.ways],
            lru_clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn line_addr(&self, addr: Addr) -> u64 {
        addr / self.cfg.line_bytes as u64
    }

    fn set_index(&self, line_addr: u64) -> usize {
        (line_addr % self.sets as u64) as usize
    }

    fn set_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.cfg.ways..(set + 1) * self.cfg.ways
    }

    /// Probe without modifying state: is the line present?
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let la = self.line_addr(addr);
        let set = self.set_index(la);
        self.lines[self.set_range(set)].iter().any(|l| l.valid && l.tag == la)
    }

    /// Demand access. Returns `true` on hit. On miss the caller is
    /// responsible for filling via [`SetAssocCache::fill`].
    pub fn access(&mut self, addr: Addr, is_write: bool) -> bool {
        self.stats.accesses += 1;
        let la = self.line_addr(addr);
        let set = self.set_index(la);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(set);
        for l in &mut self.lines[range] {
            if l.valid && l.tag == la {
                l.lru = clock;
                if is_write {
                    l.dirty = true;
                }
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Install the line containing `addr`, evicting LRU. Returns `true`
    /// if a dirty line was evicted (write-back traffic).
    pub fn fill(&mut self, addr: Addr, is_write: bool, from_prefetch: bool) -> bool {
        let la = self.line_addr(addr);
        let set = self.set_index(la);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        if from_prefetch {
            self.stats.prefetch_fills += 1;
        }
        let range = self.set_range(set);
        // Already present (e.g. racing prefetch): just touch.
        if let Some(l) = self.lines[range.clone()].iter_mut().find(|l| l.valid && l.tag == la) {
            l.lru = clock;
            if is_write {
                l.dirty = true;
            }
            return false;
        }
        let victim = self.lines[range]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        let evicted_dirty = victim.valid && victim.dirty;
        if evicted_dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line { tag: la, valid: true, dirty: is_write, lru: clock };
        evicted_dirty
    }
}

/// The L1D stride prefetcher: a small PC-indexed table tracking last
/// address and stride with 2-bit confidence; on a confirmed stride it
/// prefetches the next line.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    entries: Vec<StrideEntry>,
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: Addr,
    last_addr: Addr,
    stride: i64,
    confidence: u8,
    valid: bool,
}

impl StridePrefetcher {
    /// A prefetcher with `entries` table slots.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        StridePrefetcher { entries: vec![StrideEntry::default(); entries] }
    }

    /// Train on a demand access; returns an address to prefetch when the
    /// stride is confident.
    pub fn train(&mut self, pc: Addr, addr: Addr) -> Option<Addr> {
        let idx = (pc as usize / 2) % self.entries.len();
        let e = &mut self.entries[idx];
        if !e.valid || e.pc != pc {
            *e = StrideEntry { pc, last_addr: addr, stride: 0, confidence: 0, valid: true };
            return None;
        }
        let new_stride = addr as i64 - e.last_addr as i64;
        if new_stride == e.stride && new_stride != 0 {
            e.confidence = (e.confidence + 1).min(3);
        } else {
            e.confidence = e.confidence.saturating_sub(1);
            e.stride = new_stride;
        }
        e.last_addr = addr;
        if e.confidence >= 2 {
            Some((addr as i64 + e.stride) as Addr)
        } else {
            None
        }
    }
}

/// The L2 stream prefetcher: detects two consecutive line misses in the
/// same direction within a region and then runs a stream `depth` lines
/// ahead.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    streams: Vec<StreamEntry>,
    line_bytes: u64,
    depth: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct StreamEntry {
    last_line: u64,
    direction: i64,
    confident: bool,
    valid: bool,
    lru: u64,
}

impl StreamPrefetcher {
    /// A stream prefetcher tracking `streams` concurrent streams.
    #[must_use]
    pub fn new(streams: usize, line_bytes: u64, depth: u64) -> Self {
        StreamPrefetcher { streams: vec![StreamEntry::default(); streams], line_bytes, depth }
    }

    /// Train on an L2 demand access; returns lines to prefetch.
    pub fn train(&mut self, addr: Addr) -> Vec<Addr> {
        let line = addr / self.line_bytes;
        // Find a stream within ±2 lines.
        let mut found = None;
        for (i, s) in self.streams.iter().enumerate() {
            if s.valid && (line as i64 - s.last_line as i64).abs() <= 2 {
                found = Some(i);
                break;
            }
        }
        let clock = self.streams.iter().map(|s| s.lru).max().unwrap_or(0) + 1;
        match found {
            Some(i) => {
                let s = &mut self.streams[i];
                let dir = (line as i64 - s.last_line as i64).signum();
                if dir != 0 && dir == s.direction {
                    s.confident = true;
                } else if dir != 0 {
                    s.direction = dir;
                    s.confident = false;
                }
                s.last_line = line;
                s.lru = clock;
                if s.confident && s.direction != 0 {
                    let dir = s.direction;
                    (1..=self.depth)
                        .map(|k| ((line as i64 + dir * k as i64) as u64) * self.line_bytes)
                        .collect()
                } else {
                    Vec::new()
                }
            }
            None => {
                // Allocate over the LRU stream.
                let victim =
                    self.streams.iter_mut().min_by_key(|s| if s.valid { s.lru } else { 0 });
                if let Some(v) = victim {
                    *v = StreamEntry {
                        last_line: line,
                        direction: 0,
                        confident: false,
                        valid: true,
                        lru: clock,
                    };
                }
                Vec::new()
            }
        }
    }
}

/// Which cache serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// First-level hit.
    L1,
    /// Second-level hit (L1 missed).
    L2,
    /// Main memory (both levels missed).
    Memory,
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total latency in cycles.
    pub latency: u64,
    /// Where the data came from.
    pub serviced_by: ServicedBy,
    /// L1 hit?
    pub l1_hit: bool,
    /// L2 hit (only meaningful when L1 missed)?
    pub l2_hit: bool,
}

/// The full hierarchy: IL1 + DL1 sharing a unified L2, plus prefetchers.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    cfg: MemConfig,
    il1: SetAssocCache,
    dl1: SetAssocCache,
    l2: SetAssocCache,
    stride: Option<StridePrefetcher>,
    stream: Option<StreamPrefetcher>,
}

impl MemHierarchy {
    /// Build the hierarchy from a configuration.
    #[must_use]
    pub fn new(cfg: MemConfig) -> Self {
        MemHierarchy {
            il1: SetAssocCache::new(cfg.il1),
            dl1: SetAssocCache::new(cfg.dl1),
            l2: SetAssocCache::new(cfg.l2),
            stride: cfg.stride_prefetch.then(|| StridePrefetcher::new(64)),
            stream: cfg
                .stream_prefetch
                .then(|| StreamPrefetcher::new(8, cfg.l2.line_bytes as u64, 2)),
            cfg,
        }
    }

    /// IL1 counters.
    #[must_use]
    pub fn il1_stats(&self) -> CacheStats {
        self.il1.stats()
    }

    /// DL1 counters.
    #[must_use]
    pub fn dl1_stats(&self) -> CacheStats {
        self.dl1.stats()
    }

    /// L2 counters.
    #[must_use]
    pub fn l2_stats(&self) -> CacheStats {
        self.l2.stats()
    }

    /// Next-event report: always [`Wake::Idle`], by contract. The
    /// hierarchy is access-driven — every miss resolves to a latency at
    /// access time, charged into the fetch stall timer or a completion
    /// event, and fills/prefetches happen synchronously in the same
    /// call. There are no MSHRs, in-flight fills, or autonomous timers
    /// here, so between accesses nothing in the hierarchy can change. A
    /// future timed extension (e.g. MSHR-limited fills) must report its
    /// pending completions through this method.
    #[must_use]
    pub fn wake(&self) -> Wake {
        Wake::Idle
    }

    fn l2_access_and_fill(&mut self, addr: Addr, is_write: bool) -> (bool, u64) {
        let l2_hit = self.l2.access(addr, is_write);
        let latency = if l2_hit {
            self.cfg.l2.hit_latency
        } else {
            self.l2.fill(addr, is_write, false);
            self.cfg.l2.hit_latency + self.cfg.mem_latency
        };
        // Train the stream prefetcher on every L2 demand access.
        if let Some(stream) = &mut self.stream {
            for pf in stream.train(addr) {
                if !self.l2.probe(pf) {
                    self.l2.fill(pf, false, true);
                }
            }
        }
        (l2_hit, latency)
    }

    /// Instruction fetch of the line containing `addr`. A next-line
    /// prefetch accompanies every access (sequential instruction
    /// prefetching is universal in real front ends; without it,
    /// straight-line code would pay one IL1 miss per 64 bytes).
    pub fn fetch_access(&mut self, addr: Addr) -> AccessResult {
        let result = {
            let l1_hit = self.il1.access(addr, false);
            if l1_hit {
                AccessResult {
                    latency: self.cfg.il1.hit_latency,
                    serviced_by: ServicedBy::L1,
                    l1_hit: true,
                    l2_hit: false,
                }
            } else {
                let (l2_hit, l2_latency) = self.l2_access_and_fill(addr, false);
                self.il1.fill(addr, false, false);
                AccessResult {
                    latency: self.cfg.il1.hit_latency + l2_latency,
                    serviced_by: if l2_hit { ServicedBy::L2 } else { ServicedBy::Memory },
                    l1_hit: false,
                    l2_hit,
                }
            }
        };
        let next_line =
            (addr / self.cfg.il1.line_bytes as u64 + 1) * self.cfg.il1.line_bytes as u64;
        if !self.il1.probe(next_line) {
            if !self.l2.probe(next_line) {
                self.l2.fill(next_line, false, true);
            }
            self.il1.fill(next_line, false, true);
        }
        result
    }

    /// Data access (load or store) by the instruction at `pc`.
    pub fn data_access(&mut self, pc: Addr, addr: Addr, is_write: bool) -> AccessResult {
        let l1_hit = self.dl1.access(addr, is_write);
        let result = if l1_hit {
            AccessResult {
                latency: self.cfg.dl1.hit_latency,
                serviced_by: ServicedBy::L1,
                l1_hit: true,
                l2_hit: false,
            }
        } else {
            let (l2_hit, l2_latency) = self.l2_access_and_fill(addr, is_write);
            self.dl1.fill(addr, is_write, false);
            AccessResult {
                latency: self.cfg.dl1.hit_latency + l2_latency,
                serviced_by: if l2_hit { ServicedBy::L2 } else { ServicedBy::Memory },
                l1_hit: false,
                l2_hit,
            }
        };
        // Train the stride prefetcher; fills are free of demand latency.
        if let Some(stride) = &mut self.stride {
            if let Some(pf) = stride.train(pc, addr) {
                if !self.dl1.probe(pf) {
                    if !self.l2.probe(pf) {
                        self.l2.fill(pf, false, true);
                    }
                    self.dl1.fill(pf, false, true);
                }
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        SetAssocCache::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, hit_latency: 1 })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = tiny_cache();
        assert!(!c.access(0x1000, false));
        c.fill(0x1000, false, false);
        assert!(c.access(0x1000, false));
        assert!(c.access(0x1010, false), "same line hits");
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny_cache();
        // Three lines mapping to set 0 (stride = sets*line = 256 B).
        c.access(0x0, false);
        c.fill(0x0, false, false);
        c.access(0x100, false);
        c.fill(0x100, false, false);
        // Touch 0x0 so 0x100 is LRU.
        assert!(c.access(0x0, false));
        c.access(0x200, false);
        c.fill(0x200, false, false);
        assert!(c.access(0x0, false), "recently used line survives");
        assert!(!c.access(0x100, false), "LRU line was evicted");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny_cache();
        c.access(0x0, true);
        c.fill(0x0, true, false);
        c.fill(0x100, false, false);
        let evicted_dirty = c.fill(0x200, false, false);
        assert!(evicted_dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stride_prefetcher_needs_confidence() {
        let mut p = StridePrefetcher::new(16);
        assert_eq!(p.train(0x40, 0x1000), None); // allocate
        assert_eq!(p.train(0x40, 0x1040), None); // first stride observed
        assert_eq!(p.train(0x40, 0x1080), None); // confidence 1
        assert_eq!(p.train(0x40, 0x10C0), Some(0x1100)); // confident
                                                         // Breaking the stride drops confidence.
        assert_eq!(p.train(0x40, 0x5000), None);
    }

    #[test]
    fn stream_prefetcher_follows_sequential_lines() {
        let mut p = StreamPrefetcher::new(4, 64, 2);
        assert!(p.train(0x1000).is_empty());
        assert!(p.train(0x1040).is_empty(), "direction observed, not yet confident");
        let pf = p.train(0x1080);
        assert_eq!(pf, vec![0x10C0, 0x1100]);
    }

    #[test]
    fn hierarchy_miss_fills_both_levels() {
        let mut h = MemHierarchy::new(MemConfig {
            stride_prefetch: false,
            stream_prefetch: false,
            ..MemConfig::paper()
        });
        let r1 = h.data_access(0x40, 0x8000, false);
        assert!(!r1.l1_hit);
        assert_eq!(r1.serviced_by, ServicedBy::Memory);
        assert_eq!(r1.latency, 3 + 12 + 150);
        let r2 = h.data_access(0x40, 0x8000, false);
        assert!(r2.l1_hit);
        assert_eq!(r2.latency, 3);
        // Instruction side is independent of the data side at L1.
        let rf = h.fetch_access(0x8000);
        assert!(!rf.l1_hit, "IL1 does not hold data-filled lines");
        assert_eq!(rf.serviced_by, ServicedBy::L2, "but unified L2 has the line");
    }

    #[test]
    fn prefetch_effect_turns_sequential_misses_into_hits() {
        let mut h = MemHierarchy::new(MemConfig::paper());
        // Walk sequential lines with one load PC: after training, later
        // lines should be DL1 hits thanks to the stride prefetcher.
        let mut misses = 0;
        for i in 0..16u64 {
            let r = h.data_access(0x400, 0x2_0000 + i * 64, false);
            if !r.l1_hit {
                misses += 1;
            }
        }
        assert!(misses < 16, "prefetcher must convert some misses into hits");
    }
}
