//! The front-end prediction unit: TAGE for conditional branches, ITTAGE
//! for indirect targets, a return-address stack for calls/returns.
//!
//! The crucial SeMPE property lives one level up: **sJMP instructions
//! never consult or update any of these structures** (paper §IV-E), which
//! is what closes the branch-predictor side channel. The pipeline enforces
//! that by simply not calling into this module for secure branches; the
//! security tests verify it by asserting that predictor update traces are
//! secret-independent.

pub mod ittage;
pub mod ras;
pub mod tage;

use sempe_isa::Addr;

use crate::config::BpredConfig;
pub use ittage::Ittage;
pub use ras::{RasSnapshot, ReturnStack};
pub use tage::{push_history, Tage, TagePrediction};

/// Counters for predictor behavior.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Conditional-branch predictions made.
    pub cond_predictions: u64,
    /// Conditional-branch mispredictions.
    pub cond_mispredicts: u64,
    /// Indirect-target predictions made (including returns).
    pub indirect_predictions: u64,
    /// Indirect-target mispredictions.
    pub indirect_mispredicts: u64,
}

impl BpredStats {
    /// Conditional misprediction rate in [0, 1].
    #[must_use]
    pub fn cond_mispredict_rate(&self) -> f64 {
        if self.cond_predictions == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_predictions as f64
        }
    }
}

/// The bundled prediction unit with speculative-history management.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    tage: Tage,
    ittage: Ittage,
    ras: ReturnStack,
    ghr: u64,
    stats: BpredStats,
}

impl BranchPredictor {
    /// Build the unit from a configuration.
    #[must_use]
    pub fn new(cfg: BpredConfig) -> Self {
        BranchPredictor {
            tage: Tage::new(cfg),
            ittage: Ittage::new(cfg),
            ras: ReturnStack::new(cfg.ras_depth),
            ghr: 0,
            stats: BpredStats::default(),
        }
    }

    /// Counters so far.
    #[must_use]
    pub fn stats(&self) -> BpredStats {
        self.stats
    }

    /// The current (speculative) global history.
    #[must_use]
    pub fn ghr(&self) -> u64 {
        self.ghr
    }

    /// Predict a conditional branch at `pc`; shifts the speculative
    /// outcome into the history. Returns `(taken, ghr_before)` — the
    /// caller stores `ghr_before` for recovery and commit-time training.
    pub fn predict_cond(&mut self, pc: Addr) -> (bool, u64) {
        let ghr_before = self.ghr;
        let p = self.tage.predict(pc, ghr_before);
        self.ghr = push_history(self.ghr, p.taken);
        self.stats.cond_predictions += 1;
        (p.taken, ghr_before)
    }

    /// Predict an indirect-jump target (non-return). Returns
    /// `(target, ghr_before)`; target 0 means "unknown".
    pub fn predict_indirect(&mut self, pc: Addr) -> (Addr, u64) {
        self.stats.indirect_predictions += 1;
        (self.ittage.predict(pc, self.ghr), self.ghr)
    }

    /// A call at fetch: push its fall-through onto the RAS.
    pub fn on_call(&mut self, return_addr: Addr) {
        self.ras.push(return_addr);
    }

    /// A return at fetch: pop the predicted target.
    pub fn predict_return(&mut self) -> Option<Addr> {
        self.stats.indirect_predictions += 1;
        self.ras.pop()
    }

    /// Snapshot the RAS for squash recovery.
    #[must_use]
    pub fn ras_snapshot(&self) -> RasSnapshot {
        self.ras.snapshot()
    }

    /// Squash recovery for a mispredicted conditional branch: rewind the
    /// history to `ghr_before`, insert the actual outcome, restore the RAS.
    pub fn recover_cond(&mut self, ghr_before: u64, actual_taken: bool, ras: &RasSnapshot) {
        self.ghr = push_history(ghr_before, actual_taken);
        self.ras.restore(ras);
        self.stats.cond_mispredicts += 1;
    }

    /// Squash recovery for a mispredicted indirect target.
    pub fn recover_indirect(&mut self, ghr_before: u64, ras: &RasSnapshot) {
        self.ghr = ghr_before;
        self.ras.restore(ras);
        self.stats.indirect_mispredicts += 1;
    }

    /// Commit-time training of a conditional branch.
    pub fn commit_cond(&mut self, pc: Addr, ghr_before: u64, taken: bool) {
        self.tage.update(pc, ghr_before, taken);
    }

    /// Commit-time training of an indirect jump.
    pub fn commit_indirect(&mut self, pc: Addr, ghr_before: u64, target: Addr) {
        self.ittage.update(pc, ghr_before, target);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculative_history_advances_and_recovers() {
        let mut bp = BranchPredictor::new(BpredConfig::paper());
        let (t1, g1) = bp.predict_cond(0x100);
        assert_eq!(g1, 0);
        assert_eq!(bp.ghr(), push_history(0, t1));
        let ras = bp.ras_snapshot();
        // Mispredict: rewind and insert the actual outcome.
        bp.recover_cond(g1, !t1, &ras);
        assert_eq!(bp.ghr(), push_history(0, !t1));
        assert_eq!(bp.stats().cond_mispredicts, 1);
    }

    #[test]
    fn return_prediction_uses_the_ras() {
        let mut bp = BranchPredictor::new(BpredConfig::paper());
        bp.on_call(0x1234);
        assert_eq!(bp.predict_return(), Some(0x1234));
        assert_eq!(bp.predict_return(), None);
    }

    #[test]
    fn training_improves_a_biased_branch() {
        let mut bp = BranchPredictor::new(BpredConfig::paper());
        let mut wrong = 0;
        for _ in 0..64 {
            let (pred, g) = bp.predict_cond(0x500);
            if !pred {
                wrong += 1;
                let ras = bp.ras_snapshot();
                bp.recover_cond(g, true, &ras);
            }
            bp.commit_cond(0x500, g, true);
        }
        assert!(wrong < 8, "always-taken branch should train fast, {wrong} wrong");
    }

    #[test]
    fn mispredict_rate_statistic() {
        let mut s = BpredStats::default();
        assert_eq!(s.cond_mispredict_rate(), 0.0);
        s.cond_predictions = 10;
        s.cond_mispredicts = 3;
        assert!((s.cond_mispredict_rate() - 0.3).abs() < 1e-12);
    }
}
