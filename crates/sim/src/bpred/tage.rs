//! A TAGE conditional branch predictor (Seznec, "A new case for the TAGE
//! branch predictor", MICRO 2011) — the paper's Table II front end uses a
//! 31 KB TAGE.
//!
//! Structure: a bimodal base predictor plus four partially-tagged tables
//! indexed by `pc` hashed with geometrically increasing global-history
//! lengths. The longest-history matching table provides the prediction;
//! allocation on mispredicts steals not-useful entries from longer tables.
//!
//! History discipline: the *caller* owns speculation. [`Tage::predict`]
//! reads the current global history register (GHR); the caller pushes the
//! speculative outcome with [`push_history`], snapshots the GHR for
//! recovery, restores it on squash, and calls [`Tage::update`] at commit
//! with the GHR value that was current at prediction time.

use sempe_isa::Addr;

use crate::config::BpredConfig;

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit counter: taken when >= 0.
    ctr: i8,
    /// 2-bit usefulness.
    useful: u8,
}

/// The TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: BpredConfig,
    bimodal: Vec<u8>,
    tables: Vec<Vec<TageEntry>>,
    updates: u64,
}

/// Internals of one prediction, consumed by [`Tage::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagePrediction {
    /// The predicted direction.
    pub taken: bool,
    /// Providing tagged table (None = bimodal).
    provider: Option<usize>,
    /// The alternate prediction (next-longest match or bimodal).
    alt_taken: bool,
}

impl Tage {
    /// Build from a [`BpredConfig`].
    #[must_use]
    pub fn new(cfg: BpredConfig) -> Self {
        Tage {
            bimodal: vec![1u8; 1 << cfg.bimodal_bits], // weakly not-taken
            tables: (0..cfg.tage_hist_lens.len())
                .map(|_| vec![TageEntry::default(); 1 << cfg.tage_table_bits])
                .collect(),
            cfg,
            updates: 0,
        }
    }

    /// Approximate storage budget in bytes (for the Table II sizing note).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let bimodal_bits = self.bimodal.len() * 2;
        let entry_bits = self.cfg.tage_tag_bits + 3 + 2;
        let table_bits: usize = self.tables.iter().map(|t| t.len() * entry_bits).sum();
        (bimodal_bits + table_bits) / 8
    }

    /// Fold the low `len` bits of `hist` into `out_bits` bits.
    fn fold(hist: u64, len: usize, out_bits: usize) -> u64 {
        let masked = if len >= 64 { hist } else { hist & ((1u64 << len) - 1) };
        let mut folded = 0u64;
        let mut rest = masked;
        let chunk = out_bits.max(1);
        let mut remaining = len;
        while remaining > 0 {
            folded ^= rest & ((1u64 << chunk) - 1);
            rest >>= chunk;
            remaining = remaining.saturating_sub(chunk);
        }
        folded
    }

    fn index(&self, table: usize, pc: Addr, ghr: u64) -> usize {
        let bits = self.cfg.tage_table_bits;
        let h = Self::fold(ghr, self.cfg.tage_hist_lens[table], bits);
        let mix = (pc >> 2) ^ (pc >> (bits as u64 + 2)) ^ h ^ (table as u64).wrapping_mul(0x9E37);
        (mix as usize) & ((1 << bits) - 1)
    }

    fn tag(&self, table: usize, pc: Addr, ghr: u64) -> u16 {
        let bits = self.cfg.tage_tag_bits;
        let h = Self::fold(ghr, self.cfg.tage_hist_lens[table], bits);
        let h2 = Self::fold(ghr, self.cfg.tage_hist_lens[table], bits.saturating_sub(1).max(1));
        let mix = (pc >> 2) ^ h ^ (h2 << 1) ^ ((table as u64) << 3);
        (mix as u16) & ((1u16 << bits) - 1)
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & ((1 << self.cfg.bimodal_bits) - 1)
    }

    /// Predict the direction of the conditional branch at `pc` under
    /// global history `ghr`.
    #[must_use]
    pub fn predict(&self, pc: Addr, ghr: u64) -> TagePrediction {
        let mut provider = None;
        let mut alt: Option<bool> = None;
        // Longest history first.
        for t in (0..self.tables.len()).rev() {
            let e = &self.tables[t][self.index(t, pc, ghr)];
            if e.tag == self.tag(t, pc, ghr) {
                if provider.is_none() {
                    provider = Some((t, e.ctr >= 0));
                } else if alt.is_none() {
                    alt = Some(e.ctr >= 0);
                    break;
                }
            }
        }
        let bimodal_taken = self.bimodal[self.bimodal_index(pc)] >= 2;
        let alt_taken = alt.unwrap_or(bimodal_taken);
        match provider {
            Some((t, taken)) => TagePrediction { taken, provider: Some(t), alt_taken },
            None => {
                TagePrediction { taken: bimodal_taken, provider: None, alt_taken: bimodal_taken }
            }
        }
    }

    /// Commit-time training. `ghr` must be the history value that was in
    /// force when this branch was predicted.
    pub fn update(&mut self, pc: Addr, ghr: u64, taken: bool) {
        self.updates += 1;
        // Periodic graceful aging of usefulness (every 256 Ki updates).
        if self.updates & ((1 << 18) - 1) == 0 {
            for t in &mut self.tables {
                for e in t.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        let pred = self.predict(pc, ghr);
        let correct = pred.taken == taken;

        match pred.provider {
            Some(t) => {
                let idx = self.index(t, pc, ghr);
                let e = &mut self.tables[t][idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                if pred.taken != pred.alt_taken {
                    if correct {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let idx = self.bimodal_index(pc);
                let c = &mut self.bimodal[idx];
                *c = if taken { (*c + 1).min(3) } else { c.saturating_sub(1) };
            }
        }

        // Allocation on a miss, in a longer-history table.
        if !correct {
            let start = pred.provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in start..self.tables.len() {
                let idx = self.index(t, pc, ghr);
                if self.tables[t][idx].useful == 0 {
                    let tag = self.tag(t, pc, ghr);
                    self.tables[t][idx] =
                        TageEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                for t in start..self.tables.len() {
                    let idx = self.index(t, pc, ghr);
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
    }
}

/// Shift `taken` into a global history register.
#[must_use]
pub fn push_history(ghr: u64, taken: bool) -> u64 {
    (ghr << 1) | u64::from(taken)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tage() -> Tage {
        Tage::new(BpredConfig::paper())
    }

    #[test]
    fn budget_is_near_the_papers_31kb() {
        let t = tage();
        let kb = t.size_bytes() as f64 / 1024.0;
        assert!(kb > 12.0 && kb < 40.0, "TAGE budget {kb:.1} KB is out of family");
    }

    #[test]
    fn learns_an_always_taken_branch() {
        let mut t = tage();
        let pc = 0x1000;
        let mut ghr = 0u64;
        for _ in 0..8 {
            let p = t.predict(pc, ghr);
            t.update(pc, ghr, true);
            ghr = push_history(ghr, true);
            let _ = p;
        }
        assert!(t.predict(pc, ghr).taken);
    }

    #[test]
    fn learns_an_alternating_pattern_via_history() {
        // T,NT,T,NT… is unlearnable for bimodal but trivial with history.
        let mut t = tage();
        let pc = 0x2040;
        let mut ghr = 0u64;
        let mut correct_late = 0;
        for i in 0..400u32 {
            let taken = i % 2 == 0;
            let p = t.predict(pc, ghr);
            if i >= 300 && p.taken == taken {
                correct_late += 1;
            }
            t.update(pc, ghr, taken);
            ghr = push_history(ghr, taken);
        }
        assert!(correct_late >= 95, "only {correct_late}/100 correct after warmup");
    }

    #[test]
    fn learns_a_short_loop_exit_pattern() {
        // A loop of 7 iterations: branch taken 6 times then not taken.
        let mut t = tage();
        let pc = 0x3000;
        let mut ghr = 0u64;
        let mut correct_late = 0;
        let mut total_late = 0;
        for trip in 0..200u32 {
            for i in 0..7u32 {
                let taken = i != 6;
                let p = t.predict(pc, ghr);
                if trip >= 150 {
                    total_late += 1;
                    if p.taken == taken {
                        correct_late += 1;
                    }
                }
                t.update(pc, ghr, taken);
                ghr = push_history(ghr, taken);
            }
        }
        let acc = correct_late as f64 / total_late as f64;
        assert!(acc > 0.9, "loop-exit accuracy {acc:.2} too low for TAGE");
    }

    #[test]
    fn different_branches_do_not_destructively_alias() {
        let mut t = tage();
        let mut ghr = 0u64;
        for _ in 0..64 {
            t.update(0x4000, ghr, true);
            ghr = push_history(ghr, true);
            t.update(0x8888, ghr, false);
            ghr = push_history(ghr, false);
        }
        assert!(t.predict(0x4000, ghr).taken);
        assert!(!t.predict(0x8888, ghr).taken);
    }

    #[test]
    fn fold_handles_full_width_history() {
        assert_eq!(Tage::fold(0, 64, 10), 0);
        // Folding is deterministic and within range.
        let f = Tage::fold(0xDEAD_BEEF_1234_5678, 64, 11);
        assert!(f < (1 << 11));
        assert_eq!(f, Tage::fold(0xDEAD_BEEF_1234_5678, 64, 11));
    }
}
