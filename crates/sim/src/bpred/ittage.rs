//! An ITTAGE indirect-target predictor (Seznec, "A 64-Kbytes ITTAGE
//! indirect branch predictor", 2011) — Table II provisions 6 KB for it.
//!
//! Structure mirrors TAGE but entries hold full targets: a direct-mapped
//! last-target base table plus two partially-tagged tables hashed with
//! different global-history lengths.

use sempe_isa::Addr;

use crate::config::BpredConfig;

#[derive(Debug, Clone, Copy, Default)]
struct ItEntry {
    tag: u16,
    target: Addr,
    /// Confidence counter, 0..=3.
    conf: u8,
    useful: u8,
}

/// The ITTAGE predictor.
#[derive(Debug, Clone)]
pub struct Ittage {
    cfg: BpredConfig,
    base: Vec<Addr>,
    tables: Vec<Vec<ItEntry>>,
    hist_lens: [usize; 2],
}

impl Ittage {
    /// Build from a [`BpredConfig`].
    #[must_use]
    pub fn new(cfg: BpredConfig) -> Self {
        Ittage {
            base: vec![0; 1 << cfg.ittage_table_bits],
            tables: (0..2).map(|_| vec![ItEntry::default(); 1 << cfg.ittage_table_bits]).collect(),
            hist_lens: [8, 32],
            cfg,
        }
    }

    /// Approximate storage in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let base = self.base.len() * 8;
        let entry = 2 + 8 + 1; // tag + target + counters
        base + self.tables.iter().map(|t| t.len() * entry).sum::<usize>()
    }

    fn index(&self, table: usize, pc: Addr, ghr: u64) -> usize {
        let bits = self.cfg.ittage_table_bits;
        let len = self.hist_lens[table];
        let masked = if len >= 64 { ghr } else { ghr & ((1u64 << len) - 1) };
        let mut folded = 0u64;
        let mut rest = masked;
        let mut remaining = len;
        while remaining > 0 {
            folded ^= rest & ((1u64 << bits) - 1);
            rest >>= bits;
            remaining = remaining.saturating_sub(bits);
        }
        (((pc >> 2) ^ folded ^ (table as u64 * 0x51ED)) as usize) & ((1 << bits) - 1)
    }

    fn tag(&self, table: usize, pc: Addr, ghr: u64) -> u16 {
        ((pc >> 5) ^ ghr ^ ((table as u64) << 7)) as u16 & 0x3FF
    }

    fn base_index(&self, pc: Addr) -> usize {
        ((pc >> 2) as usize) & (self.base.len() - 1)
    }

    /// Predict the target of the indirect jump at `pc`. Returns 0 when the
    /// predictor has never seen the branch (callers treat 0 as "no
    /// prediction").
    #[must_use]
    pub fn predict(&self, pc: Addr, ghr: u64) -> Addr {
        for t in (0..self.tables.len()).rev() {
            let e = &self.tables[t][self.index(t, pc, ghr)];
            if e.tag == self.tag(t, pc, ghr) && e.conf > 0 {
                return e.target;
            }
        }
        self.base[self.base_index(pc)]
    }

    /// Commit-time training with the prediction-time history.
    pub fn update(&mut self, pc: Addr, ghr: u64, actual: Addr) {
        let predicted = self.predict(pc, ghr);
        let correct = predicted == actual;

        // Train the providing entry (or base).
        let mut provider = None;
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(t, pc, ghr);
            if self.tables[t][idx].tag == self.tag(t, pc, ghr) && self.tables[t][idx].conf > 0 {
                provider = Some((t, idx));
                break;
            }
        }
        match provider {
            Some((t, idx)) => {
                let e = &mut self.tables[t][idx];
                if e.target == actual {
                    e.conf = (e.conf + 1).min(3);
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.conf = e.conf.saturating_sub(1);
                    e.useful = e.useful.saturating_sub(1);
                    if e.conf == 0 {
                        e.target = actual;
                        e.conf = 1;
                    }
                }
            }
            None => {
                let idx = self.base_index(pc);
                self.base[idx] = actual;
            }
        }

        // Allocate in a longer table on a wrong target.
        if !correct {
            let start = provider.map_or(0, |(t, _)| t + 1);
            for t in start..self.tables.len() {
                let idx = self.index(t, pc, ghr);
                if self.tables[t][idx].useful == 0 {
                    let tag = self.tag(t, pc, ghr);
                    self.tables[t][idx] = ItEntry { tag, target: actual, conf: 1, useful: 0 };
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it() -> Ittage {
        Ittage::new(BpredConfig::paper())
    }

    #[test]
    fn size_is_near_six_kilobytes() {
        let kb = it().size_bytes() as f64 / 1024.0;
        assert!(kb > 3.0 && kb < 16.0, "ITTAGE budget {kb:.1} KB out of family");
    }

    #[test]
    fn learns_a_monomorphic_target() {
        let mut p = it();
        for _ in 0..4 {
            p.update(0x900, 0, 0x4444);
        }
        assert_eq!(p.predict(0x900, 0), 0x4444);
    }

    #[test]
    fn history_disambiguates_polymorphic_targets() {
        let mut p = it();
        // Same indirect jump, target depends on recent history.
        for _ in 0..64 {
            p.update(0x900, 0b1010, 0x1111);
            p.update(0x900, 0b0101, 0x2222);
        }
        assert_eq!(p.predict(0x900, 0b1010), 0x1111);
        assert_eq!(p.predict(0x900, 0b0101), 0x2222);
    }

    #[test]
    fn unknown_pc_predicts_zero() {
        assert_eq!(it().predict(0xABCD, 0), 0);
    }
}
