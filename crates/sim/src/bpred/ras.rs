//! A return-address stack with copy-based checkpointing (the stack is
//! small, so snapshot-on-branch is the simplest correct recovery scheme in
//! a software model).

use sempe_isa::Addr;

/// Fixed-depth return-address stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnStack {
    entries: Vec<Addr>,
    depth: usize,
}

/// A recoverable snapshot of the stack.
pub type RasSnapshot = Vec<Addr>;

impl ReturnStack {
    /// A stack holding up to `depth` return addresses.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        ReturnStack { entries: Vec::with_capacity(depth), depth }
    }

    /// Push a return address (a call retires its fall-through here). The
    /// oldest entry falls off when full, like real hardware.
    pub fn push(&mut self, addr: Addr) {
        if self.entries.len() == self.depth {
            self.entries.remove(0);
        }
        self.entries.push(addr);
    }

    /// Pop the predicted return target.
    pub fn pop(&mut self) -> Option<Addr> {
        self.entries.pop()
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the stack empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Snapshot for squash recovery.
    #[must_use]
    pub fn snapshot(&self) -> RasSnapshot {
        self.entries.clone()
    }

    /// Restore a snapshot.
    pub fn restore(&mut self, snap: &RasSnapshot) {
        self.entries.clear();
        self.entries.extend_from_slice(snap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_is_lifo() {
        let mut r = ReturnStack::new(4);
        r.push(0x10);
        r.push(0x20);
        assert_eq!(r.pop(), Some(0x20));
        assert_eq!(r.pop(), Some(0x10));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None, "oldest entry was dropped");
    }

    #[test]
    fn snapshot_restore_roundtrips() {
        let mut r = ReturnStack::new(4);
        r.push(7);
        let snap = r.snapshot();
        r.push(8);
        r.pop();
        r.pop();
        assert!(r.is_empty());
        r.restore(&snap);
        assert_eq!(r.pop(), Some(7));
    }
}
