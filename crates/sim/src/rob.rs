//! The reorder buffer: a circular buffer of in-flight µops, committed in
//! order from the head, squashed youngest-first from the tail.

use sempe_isa::insn::Inst;
use sempe_isa::Addr;

use crate::bpred::RasSnapshot;
use crate::rename::{PhysReg, RatCheckpoint};
use crate::skip::Wake;

/// Index of a ROB slot. Slots are reused; pair with the entry's `seq` to
/// detect staleness.
pub type RobSlot = usize;

/// One in-flight µop.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Global program-order sequence number (never reused).
    pub seq: u64,
    /// Instruction address.
    pub pc: Addr,
    /// Decoded instruction.
    pub inst: Inst,
    /// Encoded length (for next-PC arithmetic).
    pub len: u8,
    /// Execution finished; eligible for commit.
    pub done: bool,
    /// Newly allocated destination register.
    pub phys_dest: Option<PhysReg>,
    /// Previous mapping of the destination (freed at commit).
    pub old_phys: Option<PhysReg>,
    /// Predicted direction (conditional branches).
    pub pred_taken: bool,
    /// Predicted next PC for taken/indirect flows.
    pub pred_target: Addr,
    /// Global history before this branch's outcome was inserted.
    pub ghr_before: u64,
    /// RAT checkpoint for squash recovery (branches only).
    pub rat_checkpoint: Option<Box<RatCheckpoint>>,
    /// RAS snapshot (after this instruction's own push/pop).
    pub ras_snapshot: Option<RasSnapshot>,
    /// Resolved direction.
    pub actual_taken: bool,
    /// Resolved target / taken-path entry for sJMP.
    pub actual_target: Addr,
    /// Was the instruction found mispredicted at resolution?
    pub mispredicted: bool,
    /// Is this a secure branch being tracked by the SempeUnit?
    pub is_sjmp: bool,
    /// Data address of a load/store (valid once executed).
    pub mem_addr: Addr,
    /// Store-queue identity for stores.
    pub store_id: Option<u64>,
    /// Architectural fault to raise at commit.
    pub exception: Option<sempe_isa::ExecError>,
}

impl RobEntry {
    /// A fresh entry for a fetched instruction.
    #[must_use]
    pub fn new(seq: u64, pc: Addr, inst: Inst, len: u8) -> Self {
        RobEntry {
            seq,
            pc,
            inst,
            len,
            done: false,
            phys_dest: None,
            old_phys: None,
            pred_taken: false,
            pred_target: 0,
            ghr_before: 0,
            rat_checkpoint: None,
            ras_snapshot: None,
            actual_taken: false,
            actual_target: 0,
            mispredicted: false,
            is_sjmp: false,
            mem_addr: 0,
            store_id: None,
            exception: None,
        }
    }

    /// The fall-through address.
    #[must_use]
    pub fn next_pc(&self) -> Addr {
        self.pc + u64::from(self.len)
    }
}

/// Circular reorder buffer.
#[derive(Debug)]
pub struct Rob {
    slots: Vec<Option<RobEntry>>,
    head: usize,
    tail: usize,
    count: usize,
}

impl Rob {
    /// A ROB with `capacity` slots.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Rob { slots: (0..capacity).map(|_| None).collect(), head: 0, tail: 0, count: 0 }
    }

    /// Reset to the pristine empty state of `Rob::new(capacity)`,
    /// recycling the slot vector's allocation where the capacity allows.
    /// Used by checkpoint restore, whose quiesce gate guarantees nothing
    /// in flight is being dropped.
    pub fn reset(&mut self, capacity: usize) {
        for s in &mut self.slots {
            *s = None;
        }
        self.slots.resize_with(capacity, || None);
        self.head = 0;
        self.tail = 0;
        self.count = 0;
    }

    /// Occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.count
    }

    /// No in-flight µops?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Any free slots?
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.count == self.slots.len()
    }

    /// Append at the tail. Returns the slot, or `None` when full.
    pub fn push(&mut self, entry: RobEntry) -> Option<RobSlot> {
        if self.is_full() {
            return None;
        }
        let slot = self.tail;
        debug_assert!(self.slots[slot].is_none());
        self.slots[slot] = Some(entry);
        self.tail = (self.tail + 1) % self.slots.len();
        self.count += 1;
        Some(slot)
    }

    /// The oldest entry.
    #[must_use]
    pub fn head(&self) -> Option<&RobEntry> {
        if self.is_empty() {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Mutable access to the oldest entry.
    pub fn head_mut(&mut self) -> Option<&mut RobEntry> {
        if self.is_empty() {
            None
        } else {
            self.slots[self.head].as_mut()
        }
    }

    /// Remove and return the oldest entry.
    pub fn pop_head(&mut self) -> Option<RobEntry> {
        if self.is_empty() {
            return None;
        }
        let e = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        self.count -= 1;
        e
    }

    /// Access a slot if it holds an entry with the expected sequence
    /// number (guards against slot reuse after squash).
    pub fn get_checked(&mut self, slot: RobSlot, seq: u64) -> Option<&mut RobEntry> {
        self.slots[slot].as_mut().filter(|e| e.seq == seq)
    }

    /// Access a slot regardless of seq.
    #[must_use]
    pub fn get(&self, slot: RobSlot) -> Option<&RobEntry> {
        self.slots.get(slot).and_then(|s| s.as_ref())
    }

    /// Squash every entry younger than `seq` (strictly greater), removing
    /// them youngest-first. Returns the removed entries, youngest first.
    pub fn squash_younger(&mut self, seq: u64) -> Vec<RobEntry> {
        let mut removed = Vec::new();
        while self.count > 0 {
            let last = (self.tail + self.slots.len() - 1) % self.slots.len();
            let is_younger = self.slots[last].as_ref().is_some_and(|e| e.seq > seq);
            if !is_younger {
                break;
            }
            let e = self.slots[last].take().expect("checked above");
            removed.push(e);
            self.tail = last;
            self.count -= 1;
        }
        removed
    }

    /// Next-event report of the commit stage's view: the ROB holds no
    /// timers of its own, so it can act exactly when the head entry has
    /// finished executing ([`Wake::Now`]) and is otherwise woken by the
    /// completion event that will finish it ([`Wake::Idle`]).
    #[must_use]
    pub fn commit_wake(&self) -> Wake {
        match self.head() {
            Some(head) if head.done => Wake::Now,
            _ => Wake::Idle,
        }
    }

    /// Iterate entries oldest to youngest.
    pub fn iter(&self) -> impl Iterator<Item = &RobEntry> {
        let cap = self.slots.len();
        let head = self.head;
        (0..self.count).filter_map(move |i| self.slots[(head + i) % cap].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sempe_isa::opcode::Opcode;

    fn entry(seq: u64) -> RobEntry {
        RobEntry::new(seq, 0x1000 + seq * 4, Inst::nullary(Opcode::Nop), 1)
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut rob = Rob::new(3);
        assert!(rob.is_empty());
        rob.push(entry(1)).unwrap();
        rob.push(entry(2)).unwrap();
        rob.push(entry(3)).unwrap();
        assert!(rob.is_full());
        assert!(rob.push(entry(4)).is_none());
        assert_eq!(rob.pop_head().unwrap().seq, 1);
        assert_eq!(rob.len(), 2);
        rob.push(entry(4)).unwrap(); // wraps around
        assert_eq!(rob.pop_head().unwrap().seq, 2);
        assert_eq!(rob.pop_head().unwrap().seq, 3);
        assert_eq!(rob.pop_head().unwrap().seq, 4);
        assert!(rob.pop_head().is_none());
    }

    #[test]
    fn squash_removes_younger_only() {
        let mut rob = Rob::new(8);
        for s in 1..=5 {
            rob.push(entry(s)).unwrap();
        }
        let removed = rob.squash_younger(3);
        let seqs: Vec<u64> = removed.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 4], "youngest first");
        assert_eq!(rob.len(), 3);
        let remaining: Vec<u64> = rob.iter().map(|e| e.seq).collect();
        assert_eq!(remaining, vec![1, 2, 3]);
        // Tail is usable again after the squash.
        rob.push(entry(6)).unwrap();
        assert_eq!(rob.iter().last().unwrap().seq, 6);
    }

    #[test]
    fn get_checked_guards_against_reuse() {
        let mut rob = Rob::new(2);
        let slot = rob.push(entry(1)).unwrap();
        assert!(rob.get_checked(slot, 1).is_some());
        assert!(rob.get_checked(slot, 99).is_none());
        rob.pop_head();
        rob.push(entry(2)).unwrap();
        rob.push(entry(3)).unwrap(); // reuses slot 0
        assert!(rob.get_checked(slot, 1).is_none(), "stale seq must not match");
    }

    #[test]
    fn squash_everything_with_seq_zero() {
        let mut rob = Rob::new(4);
        for s in 1..=4 {
            rob.push(entry(s)).unwrap();
        }
        let removed = rob.squash_younger(0);
        assert_eq!(removed.len(), 4);
        assert!(rob.is_empty());
    }
}
