//! Tiered execution: the functional fast-forward engine (tier two of
//! the perf architecture — see `docs/performance.md`).
//!
//! Under [`crate::config::Stepping::Tiered`] the simulator executes
//! instructions outside the region of interest *functionally* — straight
//! through the shared ISA semantic kernel
//! ([`sempe_isa::semantics::eval_op`] / [`branch_taken`]), no pipeline,
//! no cycles — while *warming* every timed structure along the committed
//! path: instruction- and data-cache fills, prefetcher training, and
//! TAGE/ITTAGE/RAS updates. At an ROI boundary the machine is already
//! architecturally quiesced (fast-forward has no in-flight state), so
//! the detailed pipeline takes over in place and simulates only the
//! cycles that the security claims are about.
//!
//! ## The warmup model
//!
//! Warming is factored behind the [`Warmup`] trait so each structure's
//! model is auditable and testable in isolation:
//!
//! * **Instruction cache** — one [`MemHierarchy::fetch_access`] per
//!   committed-path line transition, exactly the dedupe rule the fetch
//!   stage uses (`last_fetch_line`), continuing the pipeline's own line
//!   tracker across the handoff.
//! * **Data cache + prefetchers** — one [`MemHierarchy::data_access`]
//!   per load that the store-forward window does not cover and per
//!   store at commit, matching where the pipeline touches the DL1.
//! * **Branch predictors** — the exact call sequence the pipeline
//!   issues for a committed branch: `predict` (speculative-history
//!   push), `recover` on an actual-outcome mismatch (history rewind +
//!   RAS restore), `update` at commit. `Tage::predict` and
//!   `Ittage::predict` are `&self` (pure), squash recovery restores the
//!   *full* RAS snapshot, and table training happens only at commit —
//!   so replaying the committed path leaves the GHR, RAS, and
//!   TAGE/ITTAGE tables **bit-for-bit identical** to a full detailed
//!   run at every ROI boundary. Only the [`crate::bpred::BpredStats`]
//!   *counters* differ (wrong-path re-fetch predictions are not
//!   replayed); those are diagnostics, not timed state.
//!
//! ## Exactness budget
//!
//! Bit-exact at a region boundary: architectural registers and memory,
//! predictor tables/GHR/RAS, and the fetch-line tracker. Approximate:
//! cache/prefetcher *timing-dependent* contents can deviate where the
//! detailed machine's wrong-path speculation or out-of-order load
//! issue would have touched lines the committed path does not (or in a
//! different order); the front end of a full run can have *run ahead*
//! through the region's own code during a stall-heavy pre-region phase
//! (fast-forward hands off with fetch parked at the boundary, so those
//! instruction misses land inside the ROI instead — the divergence is
//! conservative, never under-counting ROI cycles); and the
//! store-forward window is a timeless stand-in for the store queue's
//! occupancy. `docs/performance.md` quantifies the measured budget; the
//! golden workloads all sit at zero, and
//! `crates/bench/tests/tiered.rs` pins both the zero cases and the
//! bounded cold-entry case.

use std::time::Instant;

use sempe_isa::insn::Inst;
use sempe_isa::mem::Memory;
use sempe_isa::opcode::{Format, Opcode};
use sempe_isa::program::DecodedProgram;
use sempe_isa::reg::{Reg, NUM_ARCH_REGS};
use sempe_isa::semantics::{access_width, branch_taken, eval_op, IntFault};
use sempe_isa::{Addr, ExecError};

use crate::bpred::BranchPredictor;
use crate::cache::MemHierarchy;
use crate::config::Roi;
use crate::pipeline::DEADLINE_QUANTUM;

/// Cache-line size used by the fetch stage's line-transition dedupe.
/// Must match `Simulator::fetch_stage`.
const LINE_BYTES: u64 = 64;

/// How a timed structure is warmed while fast-forwarding. One method per
/// pipeline touch point; the fast-forward core decides *when* each fires
/// (committed-path semantics), the implementation decides *what* state
/// it warms. [`FullWarmup`] is the production model; tests implement the
/// trait per structure to audit each model in isolation, and
/// [`NoWarmup`] gives the cold-handoff ablation.
pub trait Warmup {
    /// The committed path crossed into the instruction-cache line
    /// holding `pc`.
    fn on_fetch_line(&mut self, hier: &mut MemHierarchy, pc: Addr);
    /// A load at `pc` read `addr`; `forwarded` is true when the
    /// store-forward window covered it (the pipeline's store-queue
    /// forwarding skips the DL1 for such loads).
    fn on_load(&mut self, hier: &mut MemHierarchy, pc: Addr, addr: Addr, forwarded: bool);
    /// A store at `pc` committed to `addr`.
    fn on_store(&mut self, hier: &mut MemHierarchy, pc: Addr, addr: Addr);
    /// A conditional branch at `pc` resolved `taken`.
    fn on_cond_branch(&mut self, bp: &mut BranchPredictor, pc: Addr, taken: bool);
    /// A call committed; `return_addr` is its fall-through.
    fn on_call(&mut self, bp: &mut BranchPredictor, return_addr: Addr);
    /// A return committed with actual target `target`.
    fn on_return(&mut self, bp: &mut BranchPredictor, target: Addr);
    /// A non-return indirect jump at `pc` committed; `fallthrough` is
    /// the static fall-through used when the predictor has no target.
    fn on_indirect(&mut self, bp: &mut BranchPredictor, pc: Addr, fallthrough: Addr, target: Addr);
}

/// The production warmup model: warm everything, replaying the exact
/// call sequence the detailed pipeline issues along the committed path.
///
/// Host-time attribution: timing every warm call would dominate the
/// fast-forward loop, so `warm_ns` is a sampled estimate — every
/// [`FullWarmup::SAMPLE`]-th call is timed and scaled by the sampling
/// factor. Deterministic, cheap, and honest enough for a host-side
/// ledger (it never feeds simulated state).
#[derive(Debug, Default)]
pub struct FullWarmup {
    calls: u64,
    warm_ns: u64,
}

impl FullWarmup {
    /// Sampling factor for the `warm_ns` estimate.
    pub const SAMPLE: u64 = 64;

    /// Sampled estimate of host nanoseconds spent warming structures.
    #[must_use]
    pub fn warm_ns(&self) -> u64 {
        self.warm_ns
    }

    fn sampled<R>(&mut self, f: impl FnOnce() -> R) -> R {
        self.calls += 1;
        if self.calls.is_multiple_of(Self::SAMPLE) {
            let t = Instant::now();
            let r = f();
            self.warm_ns += Self::SAMPLE
                * u64::try_from(t.elapsed().as_nanos().min(u128::from(u64::MAX))).unwrap_or(0);
            r
        } else {
            f()
        }
    }
}

impl Warmup for FullWarmup {
    fn on_fetch_line(&mut self, hier: &mut MemHierarchy, pc: Addr) {
        self.sampled(|| {
            hier.fetch_access(pc);
        });
    }

    fn on_load(&mut self, hier: &mut MemHierarchy, pc: Addr, addr: Addr, forwarded: bool) {
        if !forwarded {
            self.sampled(|| {
                hier.data_access(pc, addr, false);
            });
        }
    }

    fn on_store(&mut self, hier: &mut MemHierarchy, pc: Addr, addr: Addr) {
        self.sampled(|| {
            hier.data_access(pc, addr, true);
        });
    }

    fn on_cond_branch(&mut self, bp: &mut BranchPredictor, pc: Addr, taken: bool) {
        self.sampled(|| {
            let (pred, ghr_before) = bp.predict_cond(pc);
            if pred != taken {
                let ras = bp.ras_snapshot();
                bp.recover_cond(ghr_before, taken, &ras);
            }
            bp.commit_cond(pc, ghr_before, taken);
        });
    }

    fn on_call(&mut self, bp: &mut BranchPredictor, return_addr: Addr) {
        self.sampled(|| {
            bp.on_call(return_addr);
        });
    }

    fn on_return(&mut self, bp: &mut BranchPredictor, target: Addr) {
        self.sampled(|| {
            let ghr_before = bp.ghr();
            let pred = bp.predict_return();
            if pred != Some(target) {
                let ras = bp.ras_snapshot();
                bp.recover_indirect(ghr_before, &ras);
            }
        });
    }

    fn on_indirect(&mut self, bp: &mut BranchPredictor, pc: Addr, fallthrough: Addr, target: Addr) {
        self.sampled(|| {
            let ghr_before = bp.ghr();
            let (t, _) = bp.predict_indirect(pc);
            let predicted = if t == 0 { fallthrough } else { t };
            if predicted != target {
                let ras = bp.ras_snapshot();
                bp.recover_indirect(ghr_before, &ras);
            }
            bp.commit_indirect(pc, ghr_before, target);
        });
    }
}

/// The cold-handoff ablation: fast-forward architecturally but warm
/// nothing. Exists so tests (and curious users) can measure how much of
/// tiered exactness the warmup models carry.
#[derive(Debug, Default)]
pub struct NoWarmup;

impl Warmup for NoWarmup {
    fn on_fetch_line(&mut self, _: &mut MemHierarchy, _: Addr) {}
    fn on_load(&mut self, _: &mut MemHierarchy, _: Addr, _: Addr, _: bool) {}
    fn on_store(&mut self, _: &mut MemHierarchy, _: Addr, _: Addr) {}
    fn on_cond_branch(&mut self, _: &mut BranchPredictor, _: Addr, _: bool) {}
    fn on_call(&mut self, _: &mut BranchPredictor, _: Addr) {}
    fn on_return(&mut self, _: &mut BranchPredictor, _: Addr) {}
    fn on_indirect(&mut self, _: &mut BranchPredictor, _: Addr, _: Addr, _: Addr) {}
}

/// May the fast-forward engine execute the *next* instruction (commit
/// number `committed + 1`) under this ROI policy? Secure-region
/// boundaries are handled separately (fast-forward always stops at a
/// secure-marked instruction); this predicate covers only the explicit
/// measurement window.
#[must_use]
pub fn ff_window_allows(roi: Roi, committed: u64) -> bool {
    match roi {
        Roi::Regions => true,
        Roi::Window { skip, insts } => {
            insts == 0 || committed < skip || committed >= skip.saturating_add(insts)
        }
    }
}

/// A timeless stand-in for the store queue, used only to decide whether
/// a load would have been satisfied by store-queue forwarding (in which
/// case the pipeline never touches the DL1 for it). Mirrors
/// `Lsq::check_load`'s forwarding rule — youngest overlapping store
/// wins, forwarding requires same address and covering width — over a
/// sliding window of the most recent `cap` stores.
#[derive(Debug)]
struct StoreWindow {
    ring: Vec<(Addr, u8)>,
    next: usize,
    cap: usize,
}

impl StoreWindow {
    fn new(cap: usize) -> Self {
        StoreWindow { ring: Vec::with_capacity(cap), next: 0, cap: cap.max(1) }
    }

    fn push(&mut self, addr: Addr, width: u8) {
        if self.ring.len() < self.cap {
            self.ring.push((addr, width));
            self.next = self.ring.len() % self.cap;
        } else {
            self.ring[self.next] = (addr, width);
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Youngest-first scan, same verdict shape as the LSQ: an exact-base
    /// covering store forwards; a partially overlapping one does not
    /// (the pipeline's load waits and then reads the DL1); older stores
    /// are shadowed by the youngest overlap.
    fn covers(&self, addr: Addr, width: u8) -> bool {
        let lo = addr;
        let hi = addr + u64::from(width);
        let n = self.ring.len();
        for i in 1..=n {
            let idx = (self.next + self.cap - i) % self.cap;
            let Some(&(sa, sw)) = self.ring.get(idx) else { continue };
            let shi = sa + u64::from(sw);
            if lo < shi && sa < hi {
                return sa == addr && sw >= width;
            }
        }
        false
    }
}

/// Why a fast-forward segment stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FfStop {
    /// Hand off to the detailed pipeline at the current PC: a
    /// secure-marked instruction, `HALT`, an undecodable PC (wrong-path
    /// semantics belong to the pipeline), or a measurement-window
    /// boundary.
    Boundary,
    /// An architectural fault (surfaces exactly as detailed commit
    /// would).
    Fault(ExecError),
    /// The committed-instruction budget derived from `max_cycles` ran
    /// out.
    Budget,
    /// The host wall-clock deadline expired.
    Deadline,
}

/// A borrow-split view of the simulator pieces the fast-forward engine
/// touches. Constructed by `Simulator::fast_forward_segment`; `pc`,
/// `committed`, and `executed` are carried back at the handoff.
pub(crate) struct FastForward<'a> {
    pub prog: &'a DecodedProgram,
    pub mem: &'a mut Memory,
    pub regs: &'a mut [u64; NUM_ARCH_REGS],
    pub hier: &'a mut MemHierarchy,
    pub bp: &'a mut BranchPredictor,
    pub last_fetch_line: &'a mut Option<u64>,
    /// Current fetch PC (in/out).
    pub pc: Addr,
    /// Global committed-instruction counter (in/out).
    pub committed: u64,
    /// Instructions executed by this segment (out).
    pub executed: u64,
}

impl FastForward<'_> {
    /// Execute functionally until an ROI boundary, fault, budget, or
    /// deadline. `store_window` is the store-queue capacity (the
    /// forwarding window); `budget` bounds the *global* committed count.
    pub(crate) fn run<W: Warmup>(
        &mut self,
        warm: &mut W,
        roi: Roi,
        store_window: usize,
        budget: u64,
        deadline: Option<Instant>,
    ) -> FfStop {
        let mut stores = StoreWindow::new(store_window);
        let mut quantum: u32 = 0;
        loop {
            if !ff_window_allows(roi, self.committed) {
                return FfStop::Boundary;
            }
            let Some((inst, len)) = self.prog.try_fetch(self.pc) else {
                return FfStop::Boundary;
            };
            if inst.secure || inst.op == Opcode::Halt {
                return FfStop::Boundary;
            }
            if self.committed >= budget {
                return FfStop::Budget;
            }
            if let Some(d) = deadline {
                quantum += 1;
                if quantum >= DEADLINE_QUANTUM {
                    quantum = 0;
                    if Instant::now() >= d {
                        return FfStop::Deadline;
                    }
                }
            }
            if let Err(fault) = self.step(warm, &mut stores, inst, len) {
                return FfStop::Fault(fault);
            }
            self.committed += 1;
            self.executed += 1;
        }
    }

    /// Execute one instruction: warm the fetch line, evaluate through
    /// the shared semantic kernel, warm data/branch structures, advance
    /// the PC.
    fn step<W: Warmup>(
        &mut self,
        warm: &mut W,
        stores: &mut StoreWindow,
        inst: Inst,
        len: usize,
    ) -> Result<(), ExecError> {
        let pc = self.pc;
        let line = pc / LINE_BYTES;
        if *self.last_fetch_line != Some(line) {
            warm.on_fetch_line(self.hier, pc);
            *self.last_fetch_line = Some(line);
        }

        let srcs = inst.sources();
        let read = |regs: &[u64; NUM_ARCH_REGS], r: Option<Reg>| {
            r.map_or(0, |r| if r.is_zero() { 0 } else { regs[r.index()] })
        };
        let v1 = read(self.regs, srcs[0]);
        let v2 = read(self.regs, srcs[1]);
        let next_seq = pc + len as Addr;
        let mut next_pc = next_seq;

        match inst.op {
            Opcode::Nop => {}
            op if op.is_load() => {
                let addr = v1.wrapping_add(inst.imm as u64);
                let width = access_width(op) as u8;
                let value = match width {
                    1 => u64::from(self.mem.read_u8(addr)),
                    4 => u64::from(self.mem.read_u32(addr)),
                    _ => self.mem.read_u64(addr),
                };
                warm.on_load(self.hier, pc, addr, stores.covers(addr, width));
                if let Some(rd) = inst.dest() {
                    self.regs[rd.index()] = value;
                }
            }
            op if op.is_store() => {
                let addr = v1.wrapping_add(inst.imm as u64);
                let width = access_width(op) as u8;
                match width {
                    1 => self.mem.write_u8(addr, v2 as u8),
                    4 => self.mem.write_u32(addr, v2 as u32),
                    _ => self.mem.write_u64(addr, v2),
                }
                stores.push(addr, width);
                warm.on_store(self.hier, pc, addr);
            }
            op if op.is_cond_branch() => {
                let taken = branch_taken(op, v1, v2);
                warm.on_cond_branch(self.bp, pc, taken);
                if taken {
                    next_pc = inst.branch_target(pc, len);
                }
            }
            Opcode::Jal => {
                if inst.rd == Reg::RA {
                    warm.on_call(self.bp, next_seq);
                }
                if let Some(rd) = inst.dest() {
                    self.regs[rd.index()] = next_seq;
                }
                next_pc = inst.branch_target(pc, len);
            }
            Opcode::Jalr => {
                let target = v1.wrapping_add(inst.imm as u64);
                if inst.rd == Reg::X0 && inst.rs1 == Reg::RA {
                    warm.on_return(self.bp, target);
                } else {
                    warm.on_indirect(self.bp, pc, next_seq, target);
                }
                if let Some(rd) = inst.dest() {
                    self.regs[rd.index()] = next_seq;
                }
                next_pc = target;
            }
            _ => {
                let b = match inst.op.format() {
                    Format::R3 => v2,
                    _ => inst.imm as u64,
                };
                let vold = if inst.reads_dest() && !inst.rd.is_zero() {
                    self.regs[inst.rd.index()]
                } else {
                    0
                };
                match eval_op(&inst, v1, b, vold) {
                    Ok(value) => {
                        if let Some(rd) = inst.dest() {
                            self.regs[rd.index()] = value;
                        }
                    }
                    Err(IntFault::DivideByZero) => {
                        return Err(ExecError::DivideByZero { pc });
                    }
                }
            }
        }
        self.pc = next_pc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_policy_gates_only_the_window() {
        let w = Roi::Window { skip: 10, insts: 5 };
        assert!(ff_window_allows(w, 0));
        assert!(ff_window_allows(w, 9));
        assert!(!ff_window_allows(w, 10), "commit 11 opens the window");
        assert!(!ff_window_allows(w, 14), "commit 15 closes the window");
        assert!(ff_window_allows(w, 15));
        assert!(ff_window_allows(Roi::Regions, 12));
        assert!(
            ff_window_allows(Roi::Window { skip: 3, insts: 0 }, 3),
            "empty window is no window"
        );
    }

    #[test]
    fn store_window_forwards_like_the_lsq() {
        let mut s = StoreWindow::new(4);
        assert!(!s.covers(0x100, 8), "empty window forwards nothing");
        s.push(0x100, 8);
        assert!(s.covers(0x100, 8), "exact match forwards");
        assert!(s.covers(0x100, 4), "narrower load under a wider store forwards");
        assert!(!s.covers(0x104, 4), "offset overlap does not forward");
        assert!(!s.covers(0x100, 16), "wider load than store does not forward");
        // A younger partial overlap shadows an older exact cover.
        s.push(0x104, 1);
        assert!(!s.covers(0x100, 8), "youngest overlapping store wins");
        // Capacity eviction: pushing past cap drops the oldest.
        let mut s = StoreWindow::new(2);
        s.push(0x10, 8);
        s.push(0x20, 8);
        s.push(0x30, 8);
        assert!(!s.covers(0x10, 8), "evicted store no longer forwards");
        assert!(s.covers(0x20, 8));
        assert!(s.covers(0x30, 8));
    }
}
