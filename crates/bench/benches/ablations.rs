//! Criterion bench over the SeMPE design-choice ablations: how simulator
//! run time varies with scratchpad throughput and drain modeling. The
//! *simulated-cycle* ablation tables (the scientific output) come from
//! `cargo run -p sempe-bench --bin ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sempe_compile::{compile, Backend};
use sempe_sim::{SimConfig, Simulator};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn bench_spm_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_spm_throughput");
    group.sample_size(10);
    let p = MicroParams { scale: 16, ..MicroParams::new(WorkloadKind::Fibonacci, 4, 1) };
    let prog = fig7_program(&p);
    let cw = compile(&prog, Backend::Sempe).expect("compiles");
    for tput in [16u64, 64, 256] {
        let mut config = SimConfig::paper();
        config.sempe.spm.throughput_bytes_per_cycle = tput;
        group.bench_with_input(BenchmarkId::from_parameter(tput), &config, |b, config| {
            b.iter(|| {
                let mut sim = Simulator::new(cw.program(), *config).expect("sim");
                sim.run(u64::MAX).expect("halts").cycles()
            });
        });
    }
    group.finish();
}

fn bench_drains(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_drains");
    group.sample_size(10);
    let p = MicroParams { scale: 16, ..MicroParams::new(WorkloadKind::Ones, 4, 1) };
    let prog = fig7_program(&p);
    let cw = compile(&prog, Backend::Sempe).expect("compiles");
    for (label, drains) in [("with_drains", true), ("drainless_insecure", false)] {
        let mut config = SimConfig::paper();
        config.sempe.drains_enabled = drains;
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, config| {
            b.iter(|| {
                let mut sim = Simulator::new(cw.program(), *config).expect("sim");
                sim.run(u64::MAX).expect("halts").cycles()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spm_throughput, bench_drains);
criterion_main!(benches);
