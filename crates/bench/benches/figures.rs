//! Criterion bench: miniature versions of each figure's workload, one
//! bench per table/figure, so `cargo bench` continuously exercises every
//! experiment path end to end. The full-size sweeps live in the
//! `fig8`/`fig9`/`fig10a`/`fig10b`/`table1` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sempe_bench::{ideal_counts, run_backend, BackendRun};
use sempe_workloads::djpeg::{djpeg_program, DjpegParams, OutputFormat};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn fig8_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_small");
    group.sample_size(10);
    for format in OutputFormat::ALL {
        let prog = djpeg_program(&DjpegParams { format, blocks: 4, seed: 0xDEC0DE });
        group.bench_with_input(BenchmarkId::from_parameter(format.name()), &prog, |b, prog| {
            b.iter(|| {
                let base = run_backend(prog, BackendRun::Baseline, u64::MAX);
                let sempe = run_backend(prog, BackendRun::Sempe, u64::MAX);
                assert!(sempe.cycles > base.cycles);
                sempe.cycles - base.cycles
            });
        });
    }
    group.finish();
}

fn fig9_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_small");
    group.sample_size(10);
    let prog = djpeg_program(&DjpegParams { format: OutputFormat::Gif, blocks: 4, seed: 1 });
    group.bench_function("cache_stats", |b| {
        b.iter(|| {
            let r = run_backend(&prog, BackendRun::Sempe, u64::MAX);
            (r.stats.il1.misses, r.stats.dl1.misses, r.stats.l2.misses)
        });
    });
    group.finish();
}

fn fig10a_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10a_small");
    group.sample_size(10);
    for kind in [WorkloadKind::Fibonacci, WorkloadKind::Quicksort] {
        let p = MicroParams { scale: 8, ..MicroParams::new(kind, 2, 1) };
        let prog = fig7_program(&p);
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &prog, |b, prog| {
            b.iter(|| {
                let base = run_backend(prog, BackendRun::Baseline, u64::MAX);
                let sempe = run_backend(prog, BackendRun::Sempe, u64::MAX);
                let cte = run_backend(prog, BackendRun::Cte, u64::MAX);
                (sempe.cycles / base.cycles, cte.cycles / base.cycles)
            });
        });
    }
    group.finish();
}

fn fig10b_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10b_small");
    group.sample_size(10);
    let p = MicroParams { scale: 8, ..MicroParams::new(WorkloadKind::Ones, 2, 1) };
    let prog = fig7_program(&p);
    group.bench_function("ideal_normalized", |b| {
        b.iter(|| {
            let base = run_backend(&prog, BackendRun::Baseline, u64::MAX);
            let sempe = run_backend(&prog, BackendRun::Sempe, u64::MAX);
            let (one, all) = ideal_counts(&prog);
            (sempe.cycles as f64 / base.cycles as f64) / (all as f64 / one as f64)
        });
    });
    group.finish();
}

fn table1_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_small");
    group.sample_size(10);
    let p = MicroParams { scale: 8, ..MicroParams::new(WorkloadKind::Fibonacci, 3, 1) };
    let prog = fig7_program(&p);
    group.bench_function("overhead_summary", |b| {
        b.iter(|| {
            let base = run_backend(&prog, BackendRun::Baseline, u64::MAX);
            let sempe = run_backend(&prog, BackendRun::Sempe, u64::MAX);
            let cte = run_backend(&prog, BackendRun::Cte, u64::MAX);
            (sempe.cycles as f64 / base.cycles as f64, cte.cycles as f64 / base.cycles as f64)
        });
    });
    group.finish();
}

criterion_group!(benches, fig8_small, fig9_small, fig10a_small, fig10b_small, table1_small);
criterion_main!(benches);
