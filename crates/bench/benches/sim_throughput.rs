//! Criterion bench: wall-clock throughput of the cycle-level simulator
//! itself, in each security mode. This tracks the *reproduction's* cost,
//! not the paper's results (those are the fig*/table* binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sempe_compile::{compile, Backend};
use sempe_sim::{SimConfig, Simulator};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn bench_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    let p = MicroParams { scale: 16, ..MicroParams::new(WorkloadKind::Fibonacci, 2, 2) };
    let prog = fig7_program(&p);

    for (label, backend, config) in [
        ("baseline", Backend::Baseline, SimConfig::baseline()),
        ("sempe", Backend::Sempe, SimConfig::paper()),
        ("cte", Backend::Cte, SimConfig::baseline()),
    ] {
        let cw = compile(&prog, backend).expect("compiles");
        // Committed instructions of one run, for ops/sec reporting.
        let mut probe = Simulator::new(cw.program(), config).expect("sim");
        let committed = probe.run(u64::MAX).expect("halts").committed();
        group.throughput(Throughput::Elements(committed));
        group.bench_with_input(BenchmarkId::from_parameter(label), &cw, |b, cw| {
            b.iter(|| {
                let mut sim = Simulator::new(cw.program(), config).expect("sim");
                sim.run(u64::MAX).expect("halts").cycles()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes);
criterion_main!(benches);
