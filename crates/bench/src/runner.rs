//! Shared measurement utilities for the experiment harnesses.

use std::sync::atomic::{AtomicUsize, Ordering};

use sempe_compile::{compile, Backend, WirProgram};
use sempe_isa::interp::{Interp, InterpMode};
use sempe_sim::{SimConfig, SimStats, Simulator};

/// Default cycle budget for harness runs.
pub const DEFAULT_MAX_CYCLES: u64 = 2_000_000_000;

/// Which (backend, machine) combination to measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendRun {
    /// Baseline binary on the unprotected pipeline.
    Baseline,
    /// SeMPE binary on the SeMPE pipeline.
    Sempe,
    /// CTE binary on the unprotected pipeline (constant-time needs no
    /// hardware support).
    Cte,
}

impl BackendRun {
    /// The three measured combinations.
    pub const ALL: [BackendRun; 3] = [BackendRun::Baseline, BackendRun::Sempe, BackendRun::Cte];

    /// The canonical (compiler backend, machine configuration) of a
    /// measured combination — the single source of truth for every
    /// harness, so a config change cannot silently diverge between the
    /// figure bins and the throughput trackers.
    #[must_use]
    pub fn pair(self) -> (Backend, SimConfig) {
        match self {
            BackendRun::Baseline => (Backend::Baseline, SimConfig::baseline()),
            BackendRun::Sempe => (Backend::Sempe, SimConfig::paper()),
            BackendRun::Cte => (Backend::Cte, SimConfig::baseline()),
        }
    }
}

/// Outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Cycle count.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Full statistics.
    pub stats: SimStats,
    /// Program outputs (for cross-checking).
    pub outputs: Vec<u64>,
}

/// Compile `prog` for `which` and run it on the cycle-level simulator.
///
/// # Panics
///
/// Panics when compilation or simulation fails — harnesses treat any
/// failure as fatal.
#[must_use]
pub fn run_backend(prog: &WirProgram, which: BackendRun, max_cycles: u64) -> RunOutcome {
    let (backend, config) = which.pair();
    let cw = compile(prog, backend).expect("workload compiles");
    let mut sim = Simulator::new(cw.program(), config).expect("simulator builds");
    let res = sim.run(max_cycles).unwrap_or_else(|e| panic!("{which:?} run failed: {e}"));
    RunOutcome {
        cycles: res.cycles(),
        committed: res.committed(),
        stats: res.stats,
        outputs: cw.read_outputs(sim.mem()),
    }
}

/// Apply `f` to every item concurrently, preserving input order in the
/// result. Each simulation is single-threaded and deterministic, so
/// independent (backend × workload) runs parallelize perfectly; the
/// figure/table harnesses use this to spread their sweeps across cores.
///
/// Work is claimed from an atomic counter, so long runs (e.g. a CTE
/// Queens configuration) do not serialize behind a static partition.
///
/// # Panics
///
/// Re-raises the first worker panic (a failed run is fatal to a sweep).
pub fn par_map<I, O, F>(items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = items.len();
    let workers =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(&items[i])));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(results) => {
                    for (i, o) in results {
                        out[i] = Some(o);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out.into_iter().map(|o| o.expect("every index claimed exactly once")).collect()
}

/// Instruction counts from the functional interpreters: `(true path only,
/// all paths)` — an instruction-level proxy for the paper's *ideal*
/// overhead (§IV-A). Note that both counts include the ShadowMemory
/// privatization code, which under-states the ideal for deeply nested
/// programs; [`ideal_cycles_micro`] measures the paper's definition
/// directly.
///
/// # Panics
///
/// Panics when the program fails to compile or run.
#[must_use]
pub fn ideal_counts(prog: &WirProgram) -> (u64, u64) {
    let cw = compile(prog, Backend::Sempe).expect("compiles");
    let mut legacy = Interp::new(cw.program(), InterpMode::Legacy).expect("interp");
    let one_path = legacy.run(u64::MAX).expect("halts").committed;
    let mut both = Interp::new(cw.program(), InterpMode::SempeFunctional).expect("interp");
    let all_paths = both.run(u64::MAX).expect("halts").committed;
    (one_path, all_paths)
}

/// The paper's ideal overhead (§IV-A) for the Figure 7 microbenchmark,
/// measured the way the paper defines it: the **sum of the execution
/// times of every branch path**, each obtained by running the baseline
/// binary with the secrets steering execution down that path, divided by
/// the baseline time of the measured configuration.
///
/// The shared prologue/loop overhead is counted once per path, which
/// slightly over-states the ideal for small workloads; the effect shrinks
/// with workload scale.
///
/// # Panics
///
/// Panics when compilation or simulation fails.
#[must_use]
pub fn ideal_cycles_micro(p: &sempe_workloads::micro::MicroParams) -> f64 {
    use sempe_workloads::micro::fig7_program;
    let denom = run_backend(&fig7_program(p), BackendRun::Baseline, u64::MAX).cycles;
    let mut sum = 0u64;
    for k in 0..=p.w {
        // Path k (0-based): secret bit k selects workload k; all bits
        // clear falls through to workload W+1.
        let secrets = if k == p.w { 0 } else { 1u64 << k };
        let sel = sempe_workloads::micro::MicroParams { secrets, ..*p };
        sum += run_backend(&fig7_program(&sel), BackendRun::Baseline, u64::MAX).cycles;
    }
    sum as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

    #[test]
    fn runner_executes_all_three_backends_consistently() {
        let p = MicroParams { scale: 8, ..MicroParams::new(WorkloadKind::Fibonacci, 1, 1) };
        let prog = fig7_program(&p);
        let outs: Vec<RunOutcome> =
            BackendRun::ALL.iter().map(|w| run_backend(&prog, *w, 50_000_000)).collect();
        assert_eq!(outs[0].outputs, outs[1].outputs, "sempe output mismatch");
        assert_eq!(outs[0].outputs, outs[2].outputs, "cte output mismatch");
        assert!(outs[1].cycles > outs[0].cycles, "sempe must cost more than baseline");
    }

    #[test]
    fn ideal_counts_reflect_dual_path_execution() {
        let p = MicroParams { scale: 8, ..MicroParams::new(WorkloadKind::Fibonacci, 2, 1) };
        let (one, all) = ideal_counts(&fig7_program(&p));
        assert!(all > one, "all-paths count must exceed one-path count");
    }
}
