//! `batch_throughput` — forked vs cold trial throughput of the
//! checkpoint/fork execution engine.
//!
//! The service's trial-shaped work (attack calibration, overhead sweeps,
//! the `batch` op) is *many runs of the same program under varying
//! inputs*. A **cold** trial pays the whole per-trial stack: compile the
//! patched program, decode, construct a simulator, load the image, run.
//! A **forked** trial pays that once — build + checkpoint — then per
//! trial restores the checkpoint (O(dirty pages)), patches the input's
//! data slot, and runs.
//!
//! The headline workload mirrors real attack targets (windowed RSA /
//! table-driven ciphers): a modexp kernel over a large precomputed
//! table. The table is secret-independent common structure — the bulk of
//! the image — so cold trials spend their time re-materializing state
//! that never changes between candidates, which is exactly what the fork
//! server amortizes. A small table-free variant is reported too, as the
//! honest lower bound: there the simulated run dominates and forking can
//! only shave the setup.
//!
//! Usage: `cargo run --release -p sempe-bench --bin batch_throughput
//! [--quick] [--out <path>] [--min-speedup <X>]` — the speedup floor is
//! enforced on the gated rows (the table workloads), and the binary
//! exits 1 when any falls below it.

use std::time::Instant;

use sempe_bench::BackendRun;
use sempe_compile::{compile, parse_wir, Backend, VarId, WirProgram};
use sempe_core::json::Json;
use sempe_sim::{SimConfig, Simulator};
use sempe_workloads::rsa::{table_modexp_program, TableModexpParams};

/// The table-free attack victim (the service e2e workload).
const MODEXP_SMALL: &str = r"
    secret key = 0b1011;
    var r = 1;
    var base = 7;
    var i = 0;
    var bit = 0;
    while (i < 4) bound 5 {
        bit = (key >> i) & 1;
        if secret (bit) { r = (r * base) % 1000003; }
        base = (base * base) % 1000003;
        i = i + 1;
    }
    output r;
";

const FUEL: u64 = 50_000_000;
/// Precomputed-table size of the headline workload, in 8-byte words
/// (64 Ki words = 512 KiB — the scale of a windowed-RSA table or a
/// T-table cipher's expanded state).
const TABLE_WORDS: usize = 1 << 16;

/// The headline workload: windowed modexp over a 512 KiB precomputed
/// table (shared with the `sim_throughput` memory-bound group — the
/// canonical attack-calibration shape).
fn table_modexp() -> (WirProgram, VarId) {
    table_modexp_program(&TableModexpParams { table_words: TABLE_WORDS, bits: 16, key: 0b1011 })
}

struct Outcome {
    workload: &'static str,
    /// Enforced by `--min-speedup` (the headline rows).
    gated: bool,
    trials: u64,
    cold_secs: f64,
    forked_secs: f64,
    /// Paranoia channel: cold and forked runs must agree cycle-for-cycle.
    checksum_cold: u64,
    checksum_forked: u64,
}

impl Outcome {
    fn cold_tps(&self) -> f64 {
        self.trials as f64 / self.cold_secs.max(1e-9)
    }

    fn forked_tps(&self) -> f64 {
        self.trials as f64 / self.forked_secs.max(1e-9)
    }

    fn speedup(&self) -> f64 {
        self.forked_tps() / self.cold_tps().max(1e-9)
    }
}

/// The attack-calibration shape: one (program, machine), N candidate
/// secrets. Cold recompiles and rebuilds per candidate — exactly what
/// `do_attack` did before the fork server; forked restores + patches.
fn attack_workload(
    workload: &'static str,
    gated: bool,
    prog: &WirProgram,
    key: VarId,
    trials: u64,
) -> Outcome {
    let backend = Backend::Baseline;
    let config = SimConfig::baseline().with_trace();
    let candidate = |t: u64| t % 16;

    let mut checksum_cold = 0u64;
    let start = Instant::now();
    for t in 0..trials {
        let mut patched = prog.clone();
        patched.set_var_init(key, candidate(t));
        let cw = compile(&patched, backend).expect("compiles");
        let mut sim = Simulator::new(cw.program(), config).expect("builds");
        let res = sim.run(FUEL).expect("halts");
        checksum_cold = checksum_cold.wrapping_add(res.cycles());
    }
    let cold_secs = start.elapsed().as_secs_f64();

    let cw = compile(prog, backend).expect("compiles");
    let secret_addr = cw.var_addr(key);
    let mut sim = Simulator::new(cw.program(), config).expect("builds");
    let cp = sim.checkpoint().expect("quiesced");
    let mut checksum_forked = 0u64;
    let start = Instant::now();
    for t in 0..trials {
        sim.restore_from(&cp);
        sim.mem_mut().write_u64(secret_addr, candidate(t));
        let res = sim.run(FUEL).expect("halts");
        checksum_forked = checksum_forked.wrapping_add(res.cycles());
    }
    let forked_secs = start.elapsed().as_secs_f64();

    Outcome { workload, gated, trials, cold_secs, forked_secs, checksum_cold, checksum_forked }
}

/// The sweep shape: the same program across all three (backend, machine)
/// pairs per trial. Cold compiles and builds three machines per trial;
/// forked keeps one checkpoint and one arena slot per pair.
fn sweep_workload(prog: &WirProgram, trials: u64) -> Outcome {
    let pairs = BackendRun::ALL.map(BackendRun::pair);

    let mut checksum_cold = 0u64;
    let start = Instant::now();
    for _ in 0..trials {
        for (backend, config) in pairs {
            let cw = compile(prog, backend).expect("compiles");
            let mut sim = Simulator::new(cw.program(), config).expect("builds");
            let res = sim.run(FUEL).expect("halts");
            checksum_cold = checksum_cold.wrapping_add(res.cycles());
        }
    }
    let cold_secs = start.elapsed().as_secs_f64();

    let mut lanes = Vec::new();
    for (backend, config) in pairs {
        let cw = compile(prog, backend).expect("compiles");
        let mut sim = Simulator::new(cw.program(), config).expect("builds");
        let cp = sim.checkpoint().expect("quiesced");
        lanes.push((sim, cp));
    }
    let mut checksum_forked = 0u64;
    let start = Instant::now();
    for _ in 0..trials {
        for (sim, cp) in &mut lanes {
            sim.restore_from(cp);
            let res = sim.run(FUEL).expect("halts");
            checksum_forked = checksum_forked.wrapping_add(res.cycles());
        }
    }
    let forked_secs = start.elapsed().as_secs_f64();

    Outcome {
        workload: "sweep",
        gated: true,
        trials,
        cold_secs,
        forked_secs,
        checksum_cold,
        checksum_forked,
    }
}

fn report_json(outcomes: &[Outcome]) -> String {
    let rows: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            Json::obj()
                .with("workload", o.workload)
                .with("gated", o.gated)
                .with("trials", o.trials)
                .with("cold_secs", (o.cold_secs * 1e6).round() / 1e6)
                .with("forked_secs", (o.forked_secs * 1e6).round() / 1e6)
                .with("cold_trials_per_sec", o.cold_tps().round())
                .with("forked_trials_per_sec", o.forked_tps().round())
                .with("speedup", (o.speedup() * 1e3).round() / 1e3)
        })
        .collect();
    let mut out = Json::obj()
        .with("bench", "batch_throughput")
        .with("unit", "trials_per_host_second")
        .with("table_words", TABLE_WORDS as u64)
        .with("rows", Json::Arr(rows))
        .encode();
    out.push('\n');
    out
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_batch_throughput.json");
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(1);
                }
            },
            "--min-speedup" => match args.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_speedup = Some(x),
                None => {
                    eprintln!("--min-speedup needs a number");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: batch_throughput [--quick] \
                     [--out <path>] [--min-speedup <X>])"
                );
                std::process::exit(1);
            }
        }
    }
    let trials = if quick { 48 } else { 256 };

    let (table_prog, table_key) = table_modexp();
    let small = parse_wir(MODEXP_SMALL).expect("parses");
    // Warm up so neither path pays first-touch page faults.
    let _ = attack_workload("warmup", false, &table_prog, table_key, 2);
    let outcomes = [
        attack_workload("attack-calibration", true, &table_prog, table_key, trials),
        attack_workload(
            "attack-calibration-small",
            false,
            &small.program,
            small.secrets[0],
            trials,
        ),
        sweep_workload(&table_prog, trials / 4),
    ];

    println!(
        "{:26} {:>7} {:>13} {:>13} {:>9}",
        "workload", "trials", "cold tr/s", "forked tr/s", "speedup"
    );
    for o in &outcomes {
        assert_eq!(
            o.checksum_cold, o.checksum_forked,
            "{}: forked cycles diverged from cold cycles",
            o.workload
        );
        println!(
            "{:26} {:>7} {:>13.0} {:>13.0} {:>8.2}x",
            o.workload,
            o.trials,
            o.cold_tps(),
            o.forked_tps(),
            o.speedup()
        );
    }

    std::fs::write(&out_path, report_json(&outcomes))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");

    if let Some(min) = min_speedup {
        let worst =
            outcomes.iter().filter(|o| o.gated).map(Outcome::speedup).fold(f64::INFINITY, f64::min);
        if worst < min {
            eprintln!("FAIL: worst gated forked/cold speedup {worst:.2}x is below {min:.2}x");
            std::process::exit(1);
        }
        println!("speedup floor {min:.2}x met (worst gated {worst:.2}x)");
    }
}
