//! `tiered_throughput` — host-side performance of tiered execution on
//! the workloads it exists for.
//!
//! The `longrun` group (see `sempe_workloads::longrun`) spends ≥95% of
//! its committed instructions in public phases outside any region of
//! interest. Next-event cycle skipping cannot help there — the public
//! loops are compute-dense, so almost every cycle has architectural
//! work — but tiered execution fast-forwards them functionally and
//! simulates cycles only inside the secure regions. This harness
//! measures that: each (workload × backend) runs under default skip
//! stepping and under tiered stepping through the same reused arena,
//! and the report records host MIPS of committed instructions for both
//! (the cross-mode comparable rate; a tiered run's simulated-cycle
//! counter only covers its detailed spans).
//!
//! Invariants asserted on every run: committed-instruction totals match
//! between the modes, outputs match, runs are deterministic across
//! reps, and the group stays ≥95% outside the ROI on the SeMPE backend
//! (the property that makes the speedup honest).
//!
//! Usage: `cargo run --release -p sempe-bench --bin tiered_throughput
//! [--quick] [--out <path>] [--min-speedup <X>]` — `--min-speedup X`
//! exits 1 unless tiered stepping delivers a ≥X steady-state MIPS
//! speedup over skip stepping on the SeMPE-backend rows (CI runs with
//! X = 5; the SeMPE rows are the hard case, since their secure regions
//! still run detailed).

use std::time::Instant;

use sempe_bench::BackendRun;
use sempe_compile::compile;
use sempe_compile::wir::WirProgram;
use sempe_core::json::Json;
use sempe_sim::{HostProfile, Simulator, Stepping};
use sempe_workloads::longrun::{
    longrun_djpeg_program, longrun_modexp_program, LongrunDjpegParams, LongrunModexpParams,
};

struct Row {
    workload: &'static str,
    backend: &'static str,
    stepping: &'static str,
    sim_cycles: u64,
    committed: u64,
    ff_committed: u64,
    roi_cycles: u64,
    secure_committed: u64,
    steady_secs: f64,
    host: HostProfile,
    outputs: Vec<u64>,
}

impl Row {
    fn mips(&self) -> f64 {
        self.committed as f64 / self.steady_secs.max(1e-9) / 1e6
    }
}

fn backend_name(which: BackendRun) -> &'static str {
    match which {
        BackendRun::Baseline => "baseline",
        BackendRun::Sempe => "sempe",
        BackendRun::Cte => "cte",
    }
}

fn measure(
    workload: &'static str,
    prog: &WirProgram,
    which: BackendRun,
    reps: u32,
    stepping: Stepping,
) -> Row {
    let (backend, config) = which.pair();
    let config = config.with_stepping(stepping);
    let cw = compile(prog, backend).expect("workload compiles");
    let mut slot: Option<Simulator> = None;
    let warm = Simulator::rebuild_or_new(&mut slot, cw.program(), config)
        .expect("simulator builds")
        .run(u64::MAX)
        .expect("workload halts");
    let outputs = cw.read_outputs(slot.as_ref().expect("slot filled").mem());
    let mut sim_cycles = 0u64;
    let mut committed = 0u64;
    let mut steady_secs = 0f64;
    let mut host = HostProfile::default();
    let mut ff_committed = 0u64;
    let mut roi_cycles = 0u64;
    let mut secure_committed = 0u64;
    for _ in 0..reps {
        let sim =
            Simulator::rebuild_or_new(&mut slot, cw.program(), config).expect("simulator rebuilds");
        let t0 = Instant::now();
        let out = sim.run(u64::MAX).expect("workload halts");
        steady_secs += t0.elapsed().as_secs_f64();
        sim_cycles += out.stats.cycles;
        committed += out.stats.committed;
        ff_committed += out.stats.ff_committed;
        roi_cycles += out.stats.roi_cycles;
        secure_committed += out.stats.secure_committed;
        host.absorb(&sim.take_host_profile());
    }
    assert_eq!(warm.stats.cycles * u64::from(reps), sim_cycles, "nondeterministic run");
    Row {
        workload,
        backend: backend_name(which),
        stepping: stepping.name(),
        sim_cycles,
        committed,
        ff_committed,
        roi_cycles,
        secure_committed,
        steady_secs,
        host,
        outputs,
    }
}

fn report_json(rows: &[Row], extra: Json) -> String {
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .with("workload", r.workload)
                .with("backend", r.backend)
                .with("stepping", r.stepping)
                .with("sim_cycles", r.sim_cycles)
                .with("committed", r.committed)
                .with("ff_committed", r.ff_committed)
                .with("roi_cycles", r.roi_cycles)
                .with("secure_committed", r.secure_committed)
                .with("steady_secs", (r.steady_secs * 1e6).round() / 1e6)
                .with("host_profile", r.host.to_json())
                .with("mips", (r.mips() * 1e3).round() / 1e3)
        })
        .collect();
    let mut obj = Json::obj()
        .with("bench", "tiered_throughput")
        .with("unit", "host_mips_of_committed_instructions")
        .with("group", "longrun")
        .with("rows", Json::Arr(rows_json));
    if let Json::Obj(extra_fields) = extra {
        for (k, v) in extra_fields {
            obj = obj.with(&k, v);
        }
    }
    let mut out = obj.encode();
    out.push('\n');
    out
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:18} {:9} {:8} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "workload", "backend", "stepping", "committed", "ff insts", "roi cycles", "host ms", "MIPS"
    );
    for r in rows {
        println!(
            "{:18} {:9} {:8} {:>12} {:>12} {:>12} {:>10.2} {:>9.3}",
            r.workload,
            r.backend,
            r.stepping,
            r.committed,
            r.ff_committed,
            r.roi_cycles,
            r.steady_secs * 1e3,
            r.mips()
        );
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_tiered_throughput.json");
    let mut min_speedup: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(1);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = need(&mut args, "--out"),
            "--min-speedup" => {
                let v = need(&mut args, "--min-speedup");
                match v.parse::<f64>() {
                    Ok(x) if x > 0.0 => min_speedup = Some(x),
                    _ => {
                        eprintln!("--min-speedup needs a positive number, got `{v}`");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: tiered_throughput [--quick] \
                     [--out <path>] [--min-speedup <X>])"
                );
                std::process::exit(1);
            }
        }
    }
    let reps = if quick { 2 } else { 5 };

    let modexp = LongrunModexpParams {
        table_words: if quick { 1 << 12 } else { 1 << 14 },
        ..LongrunModexpParams::default()
    };
    let djpeg = LongrunDjpegParams {
        blocks: if quick { 24 } else { 48 },
        public_iters: if quick { 5000 } else { 12000 },
        ..LongrunDjpegParams::default()
    };
    let workloads: Vec<(&'static str, WirProgram)> = vec![
        ("longrun-modexp", longrun_modexp_program(&modexp).0),
        ("longrun-djpeg", longrun_djpeg_program(&djpeg)),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, prog) in &workloads {
        for which in BackendRun::ALL {
            let skip = measure(name, prog, which, reps, Stepping::Skip);
            let tiered = measure(name, prog, which, reps, Stepping::Tiered);
            assert_eq!(
                skip.committed, tiered.committed,
                "{name}/{which:?}: tiered and skip disagree on committed instructions"
            );
            assert_eq!(
                skip.outputs, tiered.outputs,
                "{name}/{which:?}: tiered and skip disagree on outputs"
            );
            if which == BackendRun::Sempe {
                // The group's defining property: ≥95% of committed
                // instructions outside the secure regions.
                assert!(
                    skip.secure_committed * 20 <= skip.committed,
                    "{name}: longrun group must stay ≥95% outside the ROI \
                     ({} of {} committed instructions are secure)",
                    skip.secure_committed / u64::from(reps),
                    skip.committed / u64::from(reps),
                );
            }
            rows.push(skip);
            rows.push(tiered);
        }
    }
    print_rows(&rows);

    // The gated number: aggregate steady-state MIPS speedup on the
    // SeMPE-backend rows (the hard case — their secure regions still
    // run the detailed pipeline).
    let agg_mips = |rows: &[Row], stepping: &str, backend: Option<&str>| {
        let (i, t) = rows
            .iter()
            .filter(|r| r.stepping == stepping && backend.is_none_or(|b| r.backend == b))
            .fold((0u64, 0f64), |(i, t), r| (i + r.committed, t + r.steady_secs));
        i as f64 / t.max(1e-9) / 1e6
    };
    let sempe_speedup = agg_mips(&rows, "tiered", Some("sempe"))
        / agg_mips(&rows, "skip", Some("sempe")).max(1e-12);
    let overall_speedup =
        agg_mips(&rows, "tiered", None) / agg_mips(&rows, "skip", None).max(1e-12);
    println!();
    println!("sempe longrun tiered speedup:   {sempe_speedup:.2}x (steady-state MIPS)");
    println!("overall longrun tiered speedup: {overall_speedup:.2}x (steady-state MIPS)");

    let extra = Json::obj()
        .with("sempe_tiered_speedup", (sempe_speedup * 100.0).round() / 100.0)
        .with("overall_tiered_speedup", (overall_speedup * 100.0).round() / 100.0);
    std::fs::write(&out_path, report_json(&rows, extra))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");

    if let Some(floor) = min_speedup {
        if sempe_speedup < floor {
            eprintln!(
                "GATE FAILED: sempe longrun tiered speedup {sempe_speedup:.2}x \
                 below the {floor}x floor"
            );
            std::process::exit(1);
        }
    }
}
