//! Table I — comparison of approaches to eliminate the secret-dependent
//! behavior of conditional branches, with this reproduction's *measured*
//! overheads in place of the reported ones.
//!
//! GhostRider/MTO and Raccoon are not re-implemented (different
//! substrates: ORAM hardware and transactional memory respectively);
//! their rows carry the figures reported in the paper, flagged as such.
//!
//! Usage: `cargo run --release -p sempe-bench --bin table1`

use sempe_bench::{par_map, run_backend, BackendRun};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn main() {
    // Measure the worst observed overhead for SeMPE and CTE over the
    // microbenchmark sweep the paper quotes (deep nesting, W = 10),
    // as one flat (workload × backend) fan-out.
    let jobs: Vec<(WorkloadKind, BackendRun)> = WorkloadKind::ALL
        .iter()
        .flat_map(|&kind| BackendRun::ALL.map(|which| (kind, which)))
        .collect();
    let runs = par_map(&jobs, |&(kind, which)| {
        let scale = match kind {
            WorkloadKind::Quicksort => 16,
            WorkloadKind::Queens => 4,
            _ => 32,
        };
        let p = MicroParams { scale, iters: 2, secrets: 0, ..MicroParams::new(kind, 10, 2) };
        run_backend(&fig7_program(&p), which, u64::MAX)
    });
    let mut sempe_worst = 0.0f64;
    let mut cte_worst = 0.0f64;
    for runs in runs.chunks(3) {
        let [base, sempe, cte] = runs else { unreachable!("three backends per workload") };
        sempe_worst = sempe_worst.max(sempe.cycles as f64 / base.cycles as f64);
        cte_worst = cte_worst.max(cte.cycles as f64 / base.cycles as f64);
    }

    println!("Table I: comparing approaches to eliminate SDBCB");
    println!("=================================================================================");
    println!(
        "{:24} {:>14} {:>14} {:>12} {:>12}",
        "aspect", "CTE", "GhostRider*", "Raccoon*", "SeMPE"
    );
    println!(
        "{:24} {:>14} {:>14} {:>12} {:>12}",
        "approach", "elim. branch", "equalize path", "exec both", "exec both"
    );
    println!("{:24} {:>14} {:>14} {:>12} {:>12}", "technique", "SW", "HW/SW", "SW", "HW/SW");
    println!(
        "{:24} {:>14} {:>14} {:>12} {:>12}",
        "programming complexity", "High", "Low", "Low", "Low"
    );
    println!(
        "{:24} {:>13.1}x {:>13}x {:>11}x {:>11.1}x",
        "measured/reported ovh.", cte_worst, "1,987", "452", sempe_worst
    );
    println!("{:24} {:>14} {:>14} {:>12} {:>12}", "simple architecture", "Yes", "No", "Yes", "Yes");
    println!("{:24} {:>14} {:>14} {:>12} {:>12}", "backward compatible?", "Yes", "No", "No", "Yes");
    println!();
    println!("* GhostRider and Raccoon overheads are the paper's reported worst cases;");
    println!("  CTE and SeMPE are measured on this reproduction (W=10 microbenchmarks).");
    println!("  Paper reference: CTE up to 187.3x, SeMPE up to 10.6x.");
}
