//! Figure 10b — SeMPE slowdown normalized to the *ideal* overhead.
//!
//! The ideal secure execution (paper §IV-A) runs every instruction of
//! every branch path: its overhead is the ratio of all-paths to one-path
//! instruction counts (obtained from the functional interpreters). The
//! paper reports SeMPE *beating* this ideal slightly, thanks to the
//! cross-path prefetching effect — normalized values hover at or below
//! 1.0 once drain/spill overheads are amortized.
//!
//! Usage: `cargo run --release -p sempe-bench --bin fig10b [--full]`

use sempe_bench::{ideal_cycles_micro, par_map, run_backend, BackendRun};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ws: Vec<usize> = if full { (1..=10).collect() } else { vec![1, 2, 4, 6, 8, 10] };
    let iters = 2;

    println!("Figure 10b: SeMPE slowdown normalized to the ideal (sum of all paths)");
    println!("paper reference: near (at most slightly above) 1.0; below 1.0 where the");
    println!("prefetching effect between paths wins");
    println!();
    println!(
        "{:10} {:>2} {:>10} {:>10} {:>11}",
        "workload", "W", "measured", "ideal", "normalized"
    );
    let scale_of = |kind: WorkloadKind| match kind {
        WorkloadKind::Quicksort => 16,
        WorkloadKind::Queens => 4,
        WorkloadKind::Fibonacci => 96,
        WorkloadKind::Ones => 64,
    };
    let configs: Vec<(WorkloadKind, usize)> =
        WorkloadKind::ALL.iter().flat_map(|&kind| ws.iter().map(move |&w| (kind, w))).collect();
    // Each config needs a baseline run, a SeMPE run, and the W+1 ideal
    // paths; every config is independent, so fan the whole grid out.
    let results = par_map(&configs, |&(kind, w)| {
        let p = MicroParams {
            scale: scale_of(kind),
            iters,
            secrets: 0,
            ..MicroParams::new(kind, w, iters)
        };
        let prog = fig7_program(&p);
        let base = run_backend(&prog, BackendRun::Baseline, u64::MAX);
        let sempe = run_backend(&prog, BackendRun::Sempe, u64::MAX);
        let measured = sempe.cycles as f64 / base.cycles as f64;
        // The ideal per the paper: the sum of every path's own
        // baseline execution time over the measured path's time.
        (measured, ideal_cycles_micro(&p))
    });

    let mut rows = configs.iter().zip(&results);
    for kind in WorkloadKind::ALL {
        for &w in &ws {
            let (_, &(measured, ideal)) = rows.next().expect("row per config");
            println!(
                "{:10} {:>2} {:>9.2}x {:>9.2}x {:>11.3}",
                kind.name(),
                w,
                measured,
                ideal,
                measured / ideal
            );
        }
        println!();
    }
}
