//! `sim_throughput` — host-side performance of the simulator itself.
//!
//! Reports simulated cycles per host second (and host MIPS of committed
//! instructions) for the micro and RSA workloads across the three
//! backends, and writes `BENCH_sim_throughput.json` so successive PRs
//! can track the simulator's performance trajectory.
//!
//! Each (workload × backend) compiles once and then reuses one simulator
//! arena across the timed repetitions via [`Simulator::rebuild`] — the
//! long-lived-worker pattern the service uses — with per-rep setup
//! (rebuild) and steady-state (run) time accounted separately, so a
//! regression in either shows up as itself rather than blurring into a
//! single number.
//!
//! Usage: `cargo run --release -p sempe-bench --bin sim_throughput
//! [--quick] [--out <path>]` — `--out` redirects the JSON report (CI
//! smoke tests write to a temp location instead of clobbering the
//! tracked snapshot).

use std::time::Instant;

use sempe_bench::BackendRun;
use sempe_compile::compile;
use sempe_compile::wir::WirProgram;
use sempe_core::json::Json;
use sempe_sim::Simulator;
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};
use sempe_workloads::rsa::{modexp_program, ModexpParams};

struct Row {
    workload: &'static str,
    group: &'static str,
    backend: &'static str,
    sim_cycles: u64,
    committed: u64,
    /// Per-rep arena rebuild time (decode + image load + state reset).
    setup_secs: f64,
    /// Per-rep simulation time.
    steady_secs: f64,
}

impl Row {
    fn host_secs(&self) -> f64 {
        (self.setup_secs + self.steady_secs).max(1e-9)
    }

    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.host_secs()
    }

    fn mips(&self) -> f64 {
        self.committed as f64 / self.host_secs() / 1e6
    }
}

fn backend_name(which: BackendRun) -> &'static str {
    match which {
        BackendRun::Baseline => "baseline",
        BackendRun::Sempe => "sempe",
        BackendRun::Cte => "cte",
    }
}

fn measure(workload: &'static str, group: &'static str, prog: &WirProgram, reps: u32) -> Vec<Row> {
    BackendRun::ALL
        .iter()
        .map(|&which| {
            let (backend, config) = which.pair();
            // Compile once; the old harness re-compiled and re-decoded
            // the unchanged program on every iteration.
            let cw = compile(prog, backend).expect("workload compiles");
            let mut slot: Option<Simulator> = None;
            // One warm-up rep (pays first-touch page faults and grows
            // the arena), then `reps` timed reps through the same arena.
            let warm = Simulator::rebuild_or_new(&mut slot, cw.program(), config)
                .expect("simulator builds")
                .run(u64::MAX)
                .expect("workload halts");
            let mut sim_cycles = 0u64;
            let mut committed = 0u64;
            let mut setup_secs = 0f64;
            let mut steady_secs = 0f64;
            for _ in 0..reps {
                let t0 = Instant::now();
                let sim = Simulator::rebuild_or_new(&mut slot, cw.program(), config)
                    .expect("simulator rebuilds");
                let t1 = Instant::now();
                let out = sim.run(u64::MAX).expect("workload halts");
                setup_secs += (t1 - t0).as_secs_f64();
                steady_secs += t1.elapsed().as_secs_f64();
                sim_cycles += out.stats.cycles;
                committed += out.stats.committed;
            }
            assert_eq!(warm.stats.cycles * u64::from(reps), sim_cycles, "nondeterministic run");
            Row {
                workload,
                group,
                backend: backend_name(which),
                sim_cycles,
                committed,
                setup_secs,
                steady_secs,
            }
        })
        .collect()
}

/// Render the report with the workspace-shared JSON encoder (the same
/// one the service protocol uses — one encoder, no drift).
fn report_json(rows: &[Row], micro_kcps: f64, overall_kcps: f64) -> String {
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .with("workload", r.workload)
                .with("group", r.group)
                .with("backend", r.backend)
                .with("sim_cycles", r.sim_cycles)
                .with("committed", r.committed)
                .with("host_secs", (r.host_secs() * 1e6).round() / 1e6)
                .with("setup_secs", (r.setup_secs * 1e6).round() / 1e6)
                .with("steady_secs", (r.steady_secs * 1e6).round() / 1e6)
                .with("cycles_per_sec", r.cycles_per_sec().round())
                .with("mips", (r.mips() * 1e3).round() / 1e3)
        })
        .collect();
    let mut out = Json::obj()
        .with("bench", "sim_throughput")
        .with("unit", "simulated_cycles_per_host_second")
        .with("rows", Json::Arr(rows_json))
        .with("micro_cycles_per_sec", micro_kcps.round())
        .with("overall_cycles_per_sec", overall_kcps.round())
        .encode();
    out.push('\n');
    out
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_sim_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: sim_throughput [--quick] [--out <path>])"
                );
                std::process::exit(1);
            }
        }
    }
    let reps = if quick { 2 } else { 5 };

    let mut rows: Vec<Row> = Vec::new();
    for kind in WorkloadKind::ALL {
        // Queens is exponential in its board size; the others are
        // (near-)linear in scale. Sized so each run stays in the
        // hundreds-of-thousands-of-cycles range.
        let scale = match kind {
            WorkloadKind::Queens => 5,
            _ => 16,
        };
        let p = MicroParams { scale, secrets: 0b01, ..MicroParams::new(kind, 2, 4) };
        rows.extend(measure(kind.name(), "micro", &fig7_program(&p), reps));
    }
    let rsa = ModexpParams { bits: 16, exponent: 0xB6B6, ..ModexpParams::default() };
    rows.extend(measure("rsa-modexp16", "rsa", &modexp_program(&rsa), reps));

    println!(
        "{:14} {:9} {:>12} {:>10} {:>9} {:>14} {:>8}",
        "workload", "backend", "sim cycles", "host ms", "setup ms", "cycles/sec", "MIPS"
    );
    for r in &rows {
        println!(
            "{:14} {:9} {:>12} {:>10.2} {:>9.3} {:>14.0} {:>8.3}",
            r.workload,
            r.backend,
            r.sim_cycles,
            r.host_secs() * 1e3,
            r.setup_secs * 1e3,
            r.cycles_per_sec(),
            r.mips()
        );
    }

    let agg = |pred: &dyn Fn(&Row) -> bool| -> f64 {
        let (c, t) = rows
            .iter()
            .filter(|r| pred(r))
            .fold((0u64, 0f64), |(c, t), r| (c + r.sim_cycles, t + r.host_secs()));
        c as f64 / t.max(1e-9)
    };
    let micro = agg(&|r| r.group == "micro");
    let overall = agg(&|_| true);
    println!();
    println!("micro aggregate:   {micro:>14.0} simulated cycles/sec");
    println!("overall aggregate: {overall:>14.0} simulated cycles/sec");

    std::fs::write(&out_path, report_json(&rows, micro, overall))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
