//! `sim_throughput` — host-side performance of the simulator itself.
//!
//! Reports simulated cycles per host second (and host MIPS of committed
//! instructions) for three workload groups across the three backends,
//! and writes `BENCH_sim_throughput.json` so successive PRs can track
//! the simulator's performance trajectory:
//!
//! * **micro** — the Figure 7 microbenchmarks (compute-dense, the hot
//!   loop's worst case for cycle skipping);
//! * **rsa** — the small modexp victim;
//! * **membound** — stall-heavy shapes (a 1 MiB dependent pointer
//!   chase and the 512 KiB windowed table-modexp attack target) whose
//!   cycles are dominated by quiescent cache-miss windows: the
//!   workloads the next-event cycle skip was built for.
//!
//! Each (workload × backend) compiles once and then reuses one simulator
//! arena across the timed repetitions via [`Simulator::rebuild`] — the
//! long-lived-worker pattern the service uses — with per-rep setup
//! (rebuild) and steady-state (run) time accounted separately, so a
//! regression in either shows up as itself rather than blurring into a
//! single number.
//!
//! Usage: `cargo run --release -p sempe-bench --bin sim_throughput
//! [--quick] [--out <path>] [--classic-out <path>]
//! [--gate-skip-speedup <X>] [--tiered-out <path>]` — `--out` redirects
//! the JSON report (CI smoke tests write to a temp location instead of
//! clobbering the tracked snapshot). `--classic-out` additionally
//! re-measures the micro and membound groups under forced classic
//! 1-cycle stepping ([`sempe_sim::Stepping::Classic`]) and writes that
//! report too; `--gate-skip-speedup X` then exits 1 unless cycle
//! skipping delivers a ≥X steady-state speedup on the membound group
//! without regressing the micro group (CI runs with X = 3).
//! `--tiered-out` adds a third A/B column: the same workloads under
//! [`sempe_sim::Stepping::Tiered`], reported as host MIPS of committed
//! instructions (simulated-cycle rates are not comparable — a tiered
//! run only spends cycles inside regions of interest). The dedicated
//! ≥5x tiered gate on fast-forward-dominated workloads lives in the
//! `tiered_throughput` bin.

use std::time::Instant;

use sempe_bench::BackendRun;
use sempe_compile::compile;
use sempe_compile::wir::WirProgram;
use sempe_core::json::Json;
use sempe_sim::{HostProfile, Simulator, Stepping};
use sempe_workloads::membound::{pointer_chase_program, ChaseParams};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};
use sempe_workloads::rsa::{modexp_program, table_modexp_program, ModexpParams, TableModexpParams};

struct Row {
    workload: &'static str,
    group: &'static str,
    backend: &'static str,
    sim_cycles: u64,
    committed: u64,
    /// Per-rep arena rebuild time (decode + image load + state reset).
    setup_secs: f64,
    /// Per-rep simulation time.
    steady_secs: f64,
    /// The simulator's own host-time attribution over the timed reps —
    /// the same ledger the service folds into its `sim_host_us`
    /// histograms, so bench and service numbers share one source.
    host: HostProfile,
}

impl Row {
    fn host_secs(&self) -> f64 {
        (self.setup_secs + self.steady_secs).max(1e-9)
    }

    fn cycles_per_sec(&self) -> f64 {
        self.sim_cycles as f64 / self.host_secs()
    }

    fn mips(&self) -> f64 {
        self.committed as f64 / self.host_secs() / 1e6
    }
}

fn backend_name(which: BackendRun) -> &'static str {
    match which {
        BackendRun::Baseline => "baseline",
        BackendRun::Sempe => "sempe",
        BackendRun::Cte => "cte",
    }
}

/// Main-memory latency of the membound group, in cycles: 300 ns at the
/// paper machine's 2 GHz — the disaggregated/far-memory (CXL-class)
/// tier that large-table attack calibration increasingly targets, and
/// the regime where stall cycles dwarf compute. The micro and rsa
/// groups keep the paper's 150-cycle local DRAM.
const FAR_MEM_LATENCY: u64 = 600;

fn measure(
    workload: &'static str,
    group: &'static str,
    prog: &WirProgram,
    reps: u32,
    stepping: Stepping,
) -> Vec<Row> {
    BackendRun::ALL
        .iter()
        .map(|&which| {
            let (backend, mut config) = which.pair();
            config.stepping = stepping;
            if group == "membound" {
                config.mem.mem_latency = FAR_MEM_LATENCY;
            }
            // Compile once; the old harness re-compiled and re-decoded
            // the unchanged program on every iteration.
            let cw = compile(prog, backend).expect("workload compiles");
            let mut slot: Option<Simulator> = None;
            // One warm-up rep (pays first-touch page faults and grows
            // the arena), then `reps` timed reps through the same arena.
            let warm = Simulator::rebuild_or_new(&mut slot, cw.program(), config)
                .expect("simulator builds")
                .run(u64::MAX)
                .expect("workload halts");
            let mut sim_cycles = 0u64;
            let mut committed = 0u64;
            let mut setup_secs = 0f64;
            let mut steady_secs = 0f64;
            let mut host = HostProfile::default();
            for _ in 0..reps {
                let t0 = Instant::now();
                let sim = Simulator::rebuild_or_new(&mut slot, cw.program(), config)
                    .expect("simulator rebuilds");
                let t1 = Instant::now();
                let out = sim.run(u64::MAX).expect("workload halts");
                setup_secs += (t1 - t0).as_secs_f64();
                steady_secs += t1.elapsed().as_secs_f64();
                sim_cycles += out.stats.cycles;
                committed += out.stats.committed;
                // Drain the per-rep ledger (rebuild resets it anyway);
                // `absorb` keeps the totals across reps.
                host.absorb(&sim.take_host_profile());
            }
            assert_eq!(warm.stats.cycles * u64::from(reps), sim_cycles, "nondeterministic run");
            assert!(
                stepping != Stepping::Classic || host.skipped_cycles == 0,
                "classic stepping must not skip"
            );
            assert_eq!(u64::from(reps), host.runs, "one instrumented run per rep");
            Row {
                workload,
                group,
                backend: backend_name(which),
                sim_cycles,
                committed,
                setup_secs,
                steady_secs,
                host,
            }
        })
        .collect()
}

/// Aggregate simulated cycles per host second over a row subset, with
/// host time measured by `time` (total or steady-state).
fn agg_by(rows: &[Row], pred: impl Fn(&Row) -> bool, time: impl Fn(&Row) -> f64) -> f64 {
    let (c, t) = rows
        .iter()
        .filter(|r| pred(r))
        .fold((0u64, 0f64), |(c, t), r| (c + r.sim_cycles, t + time(r)));
    c as f64 / t.max(1e-9)
}

/// Aggregate simulated cycles per total host second over a row subset.
fn agg(rows: &[Row], pred: impl Fn(&Row) -> bool) -> f64 {
    agg_by(rows, pred, Row::host_secs)
}

/// Steady-state (run-only) simulated cycles per host second for a group.
fn steady_agg(rows: &[Row], group: &str) -> f64 {
    agg_by(rows, |r| r.group == group, |r| r.steady_secs)
}

/// Render the report with the workspace-shared JSON encoder (the same
/// one the service protocol uses — one encoder, no drift).
fn report_json(rows: &[Row], stepping: &str, extra: Json) -> String {
    let rows_json: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .with("workload", r.workload)
                .with("group", r.group)
                .with("backend", r.backend)
                .with("sim_cycles", r.sim_cycles)
                .with("committed", r.committed)
                .with("host_secs", (r.host_secs() * 1e6).round() / 1e6)
                .with("setup_secs", (r.setup_secs * 1e6).round() / 1e6)
                .with("steady_secs", (r.steady_secs * 1e6).round() / 1e6)
                .with("skipped_cycles", r.host.skipped_cycles)
                .with("host_profile", r.host.to_json())
                .with("cycles_per_sec", r.cycles_per_sec().round())
                .with("mips", (r.mips() * 1e3).round() / 1e3)
        })
        .collect();
    let mut obj = Json::obj()
        .with("bench", "sim_throughput")
        .with("unit", "simulated_cycles_per_host_second")
        .with("stepping", stepping)
        .with("rows", Json::Arr(rows_json))
        .with("micro_cycles_per_sec", agg(rows, |r| r.group == "micro").round())
        .with("membound_cycles_per_sec", agg(rows, |r| r.group == "membound").round())
        .with("overall_cycles_per_sec", agg(rows, |_| true).round());
    if let Json::Obj(extra_fields) = extra {
        for (k, v) in extra_fields {
            obj = obj.with(&k, v);
        }
    }
    let mut out = obj.encode();
    out.push('\n');
    out
}

fn print_rows(rows: &[Row]) {
    println!(
        "{:18} {:9} {:9} {:>12} {:>10} {:>9} {:>14} {:>8}",
        "workload", "group", "backend", "sim cycles", "host ms", "setup ms", "cycles/sec", "MIPS"
    );
    for r in rows {
        println!(
            "{:18} {:9} {:9} {:>12} {:>10.2} {:>9.3} {:>14.0} {:>8.3}",
            r.workload,
            r.group,
            r.backend,
            r.sim_cycles,
            r.host_secs() * 1e3,
            r.setup_secs * 1e3,
            r.cycles_per_sec(),
            r.mips()
        );
    }
}

/// The micro group must stay within measurement noise of classic
/// stepping (the quiescence probe costs a few branches per tick); this
/// floor only catches a structural regression, not jitter.
const MICRO_NOISE_FLOOR: f64 = 0.8;

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_sim_throughput.json");
    let mut classic_out: Option<String> = None;
    let mut tiered_out: Option<String> = None;
    let mut gate: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(1);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = need(&mut args, "--out"),
            "--classic-out" => classic_out = Some(need(&mut args, "--classic-out")),
            "--tiered-out" => tiered_out = Some(need(&mut args, "--tiered-out")),
            "--gate-skip-speedup" => {
                let v = need(&mut args, "--gate-skip-speedup");
                match v.parse::<f64>() {
                    Ok(x) if x > 0.0 => gate = Some(x),
                    _ => {
                        eprintln!("--gate-skip-speedup needs a positive number, got `{v}`");
                        std::process::exit(1);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: sim_throughput [--quick] [--out <path>] \
                     [--classic-out <path>] [--gate-skip-speedup <X>] [--tiered-out <path>])"
                );
                std::process::exit(1);
            }
        }
    }
    let reps = if quick { 2 } else { 5 };

    let mut workloads: Vec<(&'static str, &'static str, WirProgram)> = Vec::new();
    for kind in WorkloadKind::ALL {
        // Queens is exponential in its board size; the others are
        // (near-)linear in scale. Sized so each run stays in the
        // hundreds-of-thousands-of-cycles range.
        let scale = match kind {
            WorkloadKind::Queens => 5,
            _ => 16,
        };
        let p = MicroParams { scale, secrets: 0b01, ..MicroParams::new(kind, 2, 4) };
        workloads.push((kind.name(), "micro", fig7_program(&p)));
    }
    let rsa = ModexpParams { bits: 16, exponent: 0xB6B6, ..ModexpParams::default() };
    workloads.push(("rsa-modexp16", "rsa", modexp_program(&rsa)));
    // The stall-heavy group: a serialized line-granular miss chain over
    // a 1 MiB table, and the windowed-modexp attack-calibration victim
    // over the 512 KiB table scale (shared with batch_throughput).
    let chase = ChaseParams { words: 1 << 17, iters: if quick { 8192 } else { 16384 } };
    workloads.push(("chase-1m", "membound", pointer_chase_program(&chase)));
    let tmx = TableModexpParams {
        table_words: 1 << 16,
        bits: if quick { 256 } else { 1024 },
        key: 0xB6B6_5A5A_B6B6_5A5A,
    };
    workloads.push(("table-modexp-512k", "membound", table_modexp_program(&tmx).0));

    let rows: Vec<Row> = workloads
        .iter()
        .flat_map(|(name, group, prog)| measure(name, group, prog, reps, Stepping::Skip))
        .collect();
    print_rows(&rows);

    let micro = agg(&rows, |r| r.group == "micro");
    let membound = agg(&rows, |r| r.group == "membound");
    let overall = agg(&rows, |_| true);
    println!();
    println!("micro aggregate:    {micro:>14.0} simulated cycles/sec");
    println!("membound aggregate: {membound:>14.0} simulated cycles/sec");
    println!("overall aggregate:  {overall:>14.0} simulated cycles/sec");

    let mut skip_extra = Json::obj();
    let mut gate_failures: Vec<String> = Vec::new();
    if classic_out.is_some() || gate.is_some() {
        // A/B: the same micro + membound programs under forced classic
        // 1-cycle stepping. Simulated cycles are bit-for-bit identical
        // (asserted below); only host time may differ.
        let classic_rows: Vec<Row> = workloads
            .iter()
            .filter(|(_, group, _)| *group != "rsa")
            .flat_map(|(name, group, prog)| measure(name, group, prog, reps, Stepping::Classic))
            .collect();
        for cr in &classic_rows {
            let sr = rows
                .iter()
                .find(|r| r.workload == cr.workload && r.backend == cr.backend)
                .expect("classic rows are a subset");
            assert_eq!(
                (cr.sim_cycles, cr.committed),
                (sr.sim_cycles, sr.committed),
                "{}/{}: classic and skip stepping disagree on simulated work",
                cr.workload,
                cr.backend
            );
        }
        println!("\nclassic stepping (micro + membound):");
        print_rows(&classic_rows);
        let membound_speedup =
            steady_agg(&rows, "membound") / steady_agg(&classic_rows, "membound");
        let micro_speedup = steady_agg(&rows, "micro") / steady_agg(&classic_rows, "micro");
        println!();
        println!("membound steady-state skip speedup: {membound_speedup:.2}x");
        println!("micro steady-state skip speedup:    {micro_speedup:.2}x");
        skip_extra = skip_extra
            .with("membound_skip_speedup", (membound_speedup * 100.0).round() / 100.0)
            .with("micro_skip_speedup", (micro_speedup * 100.0).round() / 100.0);
        if let Some(path) = &classic_out {
            std::fs::write(path, report_json(&classic_rows, "classic", Json::obj()))
                .unwrap_or_else(|e| panic!("write {path}: {e}"));
            println!("wrote {path}");
        }
        if let Some(floor) = gate {
            if membound_speedup < floor {
                gate_failures.push(format!(
                    "membound steady-state speedup {membound_speedup:.2}x below the {floor}x floor"
                ));
            }
            if micro_speedup < MICRO_NOISE_FLOOR {
                gate_failures.push(format!(
                    "micro steady-state ratio {micro_speedup:.2}x below the \
                     {MICRO_NOISE_FLOOR}x noise floor (skip probe overhead regression)"
                ));
            }
        }
    }

    if let Some(path) = &tiered_out {
        // Third A/B column: the same workloads under tiered stepping.
        // A tiered run's `cycles` counter only covers the detailed
        // regions of interest, so the cross-mode comparable rate is
        // host MIPS of committed instructions — a counter tiered
        // execution preserves exactly (asserted below).
        let tiered_rows: Vec<Row> = workloads
            .iter()
            .flat_map(|(name, group, prog)| measure(name, group, prog, reps, Stepping::Tiered))
            .collect();
        for tr in &tiered_rows {
            let sr = rows
                .iter()
                .find(|r| r.workload == tr.workload && r.backend == tr.backend)
                .expect("tiered rows mirror the skip rows");
            assert_eq!(
                tr.committed, sr.committed,
                "{}/{}: tiered and skip stepping disagree on committed instructions",
                tr.workload, tr.backend
            );
        }
        println!("\ntiered stepping (all groups):");
        print_rows(&tiered_rows);
        let mips = |rs: &[Row], group: &str| {
            let (i, t) = rs
                .iter()
                .filter(|r| r.group == group)
                .fold((0u64, 0f64), |(i, t), r| (i + r.committed, t + r.steady_secs));
            i as f64 / t.max(1e-9) / 1e6
        };
        let mut tiered_extra = Json::obj();
        println!();
        for group in ["micro", "rsa", "membound"] {
            let speedup = mips(&tiered_rows, group) / mips(&rows, group).max(1e-12);
            println!("{group} steady-state tiered MIPS speedup: {speedup:.2}x");
            tiered_extra = tiered_extra
                .with(&format!("{group}_tiered_mips_speedup"), (speedup * 100.0).round() / 100.0);
        }
        std::fs::write(path, report_json(&tiered_rows, "tiered", tiered_extra))
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }

    std::fs::write(&out_path, report_json(&rows, "skip", skip_extra))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");

    if !gate_failures.is_empty() {
        for f in &gate_failures {
            eprintln!("GATE FAILED: {f}");
        }
        std::process::exit(1);
    }
}
