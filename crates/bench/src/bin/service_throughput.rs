//! `service_throughput` — legacy vs multiplexed request throughput of
//! the event-loop service core.
//!
//! Drives an in-process daemon with a cheap cached `run` request (the
//! simulation cost is paid once, then every response is a cache hit),
//! so the numbers measure the serving machinery itself: event loop,
//! framing, queue handoff, completion routing, socket writes. Two
//! modes per connection count:
//!
//! * **legacy** — protocol v1, one request in flight per connection
//!   (the strict request/response lockstep a v1 client is limited to);
//! * **multiplexed** — protocol v2 (`hello` upgrade), pipeline depth
//!   8 per connection, responses matched by id.
//!
//! The claim being gated: one multiplexed connection pool must move at
//! least as many requests per second as the same number of legacy
//! connections at 64 connections — pipelining must beat lockstep, or
//! the event loop is serializing something it shouldn't.
//!
//! A third tier measures the shard router: the same multiplexed
//! cached-hit workload at 64 connections through one `sempe-router`
//! fronting two shards (**routed**). The gate: routed throughput must
//! stay within 10% of the direct single-server number (default floor
//! 0.9×) — the front door's re-framing, digest pick, and id rewriting
//! must not eat the scale-out it exists to provide. On a single-CPU
//! host the router's event loop time-shares the same core as the
//! client and both shards, so its per-request cost cannot be hidden by
//! parallelism; unless `--min-routed-ratio` was given explicitly, the
//! floor drops to 0.65× there (and says so on stdout).
//!
//! Usage: `cargo run --release -p sempe-bench --bin service_throughput
//! [--quick] [--out <path>] [--min-ratio <X>] [--min-routed-ratio <X>]`.
//! Writes `BENCH_service_throughput.json`; exits 1 when the
//! multiplexed/legacy ratio at 64 connections falls below the floor
//! (default 1.0) or routed/direct falls below its floor (default 0.9).

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sempe_core::json::{self, Json};
use sempe_service::{Router, RouterConfig, Server, ServiceConfig};

/// The cheap request body: a few hundred simulated cycles, cached
/// after the first execution.
const MODEXP_SMALL: &str = r"
    secret key = 0b1011;
    var r = 1;
    var base = 7;
    var i = 0;
    var bit = 0;
    while (i < 4) bound 5 {
        bit = (key >> i) & 1;
        if secret (bit) { r = (r * base) % 1000003; }
        base = (base * base) % 1000003;
        i = i + 1;
    }
    output r;
";

const CONN_COUNTS: [usize; 4] = [1, 8, 64, 256];
const PIPELINE_DEPTH: usize = 8;
const GATED_CONNS: usize = 64;

struct Cell {
    conns: usize,
    mode: &'static str,
    depth: usize,
    requests: u64,
    elapsed_secs: f64,
    p99_us: u64,
}

impl Cell {
    fn rps(&self) -> f64 {
        self.requests as f64 / self.elapsed_secs.max(1e-9)
    }
}

/// Minimal line framing over a blocking socket — a read can return any
/// byte split, and responses must be reassembled exactly.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn read_line(&mut self) -> String {
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line = String::from_utf8_lossy(&self.buf[..nl]).into_owned();
                self.buf.drain(..=nl);
                return line;
            }
            let mut chunk = [0u8; 16 * 1024];
            let n = self.stream.read(&mut chunk).expect("read");
            assert!(n > 0, "server closed the connection mid-bench");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

/// One connection's worth of load: keep `depth` requests in flight
/// until the window closes, then drain. Returns (completed, latencies
/// in µs).
fn drive_conn(
    addr: std::net::SocketAddr,
    conn: usize,
    depth: usize,
    v2: bool,
    body: &str,
    end: Instant,
) -> (u64, Vec<u64>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let mut reader = LineReader { stream: stream.try_clone().expect("clone"), buf: Vec::new() };
    if v2 {
        writeln!(stream, r#"{{"id":"hello","type":"hello","proto":2}}"#).expect("hello");
        let resp = reader.read_line();
        assert!(resp.contains(r#""ok":true"#), "hello failed: {resp}");
    }

    let mut sent = 0u64;
    let mut inflight: HashMap<String, Instant> = HashMap::new();
    let mut latencies = Vec::new();
    let send_one =
        |stream: &mut TcpStream, inflight: &mut HashMap<String, Instant>, sent: &mut u64| {
            let id = format!("c{conn}-{sent}");
            let line = format!(r#"{{"id":"{id}",{body}}}"#);
            inflight.insert(id, Instant::now());
            *sent += 1;
            writeln!(stream, "{line}").expect("send");
        };
    for _ in 0..depth {
        send_one(&mut stream, &mut inflight, &mut sent);
    }
    let mut completed = 0u64;
    while !inflight.is_empty() {
        let resp = reader.read_line();
        let id = json::parse(&resp)
            .ok()
            .and_then(|v| v.get("id").and_then(|i| i.as_str().map(String::from)))
            .expect("id-tagged response");
        let t0 = inflight.remove(&id).expect("known id");
        latencies.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        completed += 1;
        if Instant::now() < end {
            send_one(&mut stream, &mut inflight, &mut sent);
        }
    }
    (completed, latencies)
}

fn run_cell(
    addr: std::net::SocketAddr,
    conns: usize,
    depth: usize,
    v2: bool,
    body: &str,
    window: Duration,
) -> Cell {
    let started = Instant::now();
    let end = started + window;
    let mut total = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|conn| s.spawn(move || drive_conn(addr, conn, depth, v2, body, end)))
            .collect();
        for h in handles {
            let (completed, lat) = h.join().expect("conn thread");
            total += completed;
            latencies.extend(lat);
        }
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let p99_us = if latencies.is_empty() {
        0
    } else {
        latencies[(latencies.len() - 1).min(latencies.len() * 99 / 100)]
    };
    Cell {
        conns,
        mode: if v2 { "multiplexed" } else { "legacy" },
        depth: if v2 { depth } else { 1 },
        requests: total,
        elapsed_secs,
        p99_us,
    }
}

/// Poll the router's `health` op until it reports `want` healthy
/// shards — benching before the probes land would measure E_BUSY.
fn wait_shards_healthy(addr: std::net::SocketAddr, want: u64, within: Duration) {
    let deadline = Instant::now() + within;
    loop {
        let mut stream = TcpStream::connect(addr).expect("connect router");
        stream.set_nodelay(true).ok();
        let mut reader = LineReader { stream: stream.try_clone().expect("clone"), buf: Vec::new() };
        writeln!(stream, r#"{{"type":"health"}}"#).expect("send health");
        let resp = reader.read_line();
        let healthy =
            json::parse(&resp).ok().and_then(|v| v.get("shards_healthy").and_then(Json::as_u64));
        if healthy == Some(want) {
            return;
        }
        assert!(Instant::now() < deadline, "router never reached {want} healthy shards: {resp}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn report_json(cells: &[Cell]) -> String {
    let rows: Vec<Json> = cells
        .iter()
        .map(|c| {
            Json::obj()
                .with("conns", c.conns)
                .with("mode", c.mode)
                .with("depth", c.depth)
                .with("requests", c.requests)
                .with("elapsed_secs", (c.elapsed_secs * 1e6).round() / 1e6)
                .with("rps", c.rps().round())
                .with("p99_us", c.p99_us)
        })
        .collect();
    let mut out = Json::obj()
        .with("bench", "service_throughput")
        .with("unit", "requests_per_host_second")
        .with("pipeline_depth", PIPELINE_DEPTH)
        .with("rows", Json::Arr(rows))
        .encode();
    out.push('\n');
    out
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_service_throughput.json");
    let mut min_ratio = 1.0f64;
    let mut min_routed_ratio = 0.9f64;
    let mut routed_ratio_explicit = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out needs a path");
                    std::process::exit(1);
                }
            },
            "--min-ratio" => match args.next().and_then(|v| v.parse().ok()) {
                Some(x) => min_ratio = x,
                None => {
                    eprintln!("--min-ratio needs a number");
                    std::process::exit(1);
                }
            },
            "--min-routed-ratio" => match args.next().and_then(|v| v.parse().ok()) {
                Some(x) => {
                    min_routed_ratio = x;
                    routed_ratio_explicit = true;
                }
                None => {
                    eprintln!("--min-routed-ratio needs a number");
                    std::process::exit(1);
                }
            },
            other => {
                eprintln!(
                    "unknown argument `{other}` (usage: service_throughput [--quick] \
                     [--out <path>] [--min-ratio <X>] [--min-routed-ratio <X>])"
                );
                std::process::exit(1);
            }
        }
    }
    let window = if quick { Duration::from_millis(1_200) } else { Duration::from_secs(4) };

    // Queue sized above the deepest cell's total in-flight (256 × 8) so
    // the bench measures serving throughput, not E_BUSY retry policy.
    let server = Server::start(&ServiceConfig {
        workers: 0,
        queue_capacity: 4096,
        ..ServiceConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let body = format!(
        r#""type":"run","source":{},"backend":"sempe","max_cycles":80000000"#,
        json::escape(MODEXP_SMALL)
    );

    // Warm the cache (and the fork/compile paths) once, off the clock.
    let _ = run_cell(addr, 1, 1, false, &body, Duration::from_millis(50));

    let mut cells = Vec::new();
    println!(
        "{:>6} {:>12} {:>6} {:>10} {:>12} {:>9}",
        "conns", "mode", "depth", "requests", "req/s", "p99 µs"
    );
    for conns in CONN_COUNTS {
        for v2 in [false, true] {
            let cell = run_cell(addr, conns, PIPELINE_DEPTH, v2, &body, window);
            println!(
                "{:>6} {:>12} {:>6} {:>10} {:>12.0} {:>9}",
                cell.conns,
                cell.mode,
                cell.depth,
                cell.requests,
                cell.rps(),
                cell.p99_us
            );
            cells.push(cell);
        }
    }

    server.shutdown();
    server.join();

    // Routed tier: the same multiplexed cached-hit workload, but
    // through one sempe-router fronting two shards. Rendezvous hashing
    // sends every request for this digest to the same shard, so the row
    // isolates the router's per-request overhead (framing, digest pick,
    // id rewrite, merge) rather than scale-out capacity.
    let shard_a = Server::start(&ServiceConfig {
        workers: 0,
        queue_capacity: 4096,
        ..ServiceConfig::default()
    })
    .expect("shard a starts");
    let shard_b = Server::start(&ServiceConfig {
        workers: 0,
        queue_capacity: 4096,
        ..ServiceConfig::default()
    })
    .expect("shard b starts");
    let router = Router::start(&RouterConfig {
        shards: vec![shard_a.local_addr().to_string(), shard_b.local_addr().to_string()],
        max_inflight: 4096,
        ..RouterConfig::default()
    })
    .expect("router starts");
    wait_shards_healthy(router.local_addr(), 2, Duration::from_secs(10));
    // Warm the routed path so the owning shard's cache is hot.
    let _ = run_cell(router.local_addr(), 1, 1, false, &body, Duration::from_millis(50));
    let mut routed_cell =
        run_cell(router.local_addr(), GATED_CONNS, PIPELINE_DEPTH, true, &body, window);
    routed_cell.mode = "routed";
    println!(
        "{:>6} {:>12} {:>6} {:>10} {:>12.0} {:>9}",
        routed_cell.conns,
        routed_cell.mode,
        routed_cell.depth,
        routed_cell.requests,
        routed_cell.rps(),
        routed_cell.p99_us
    );
    cells.push(routed_cell);
    router.shutdown();
    router.join();
    shard_a.shutdown();
    shard_a.join();
    shard_b.shutdown();
    shard_b.join();

    std::fs::write(&out_path, report_json(&cells))
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");

    let rps_at = |mode: &str| {
        cells
            .iter()
            .find(|c| c.conns == GATED_CONNS && c.mode == mode)
            .map(Cell::rps)
            .expect("gated cell present")
    };
    let (legacy, multiplexed) = (rps_at("legacy"), rps_at("multiplexed"));
    let ratio = multiplexed / legacy.max(1e-9);
    if ratio < min_ratio {
        eprintln!(
            "FAIL: multiplexed/legacy throughput ratio {ratio:.3} at {GATED_CONNS} connections \
             is below the {min_ratio:.2} floor ({multiplexed:.0} vs {legacy:.0} req/s)"
        );
        std::process::exit(1);
    }
    println!(
        "throughput floor met at {GATED_CONNS} connections: multiplexed {multiplexed:.0} req/s \
         ≥ {min_ratio:.2}× legacy {legacy:.0} req/s"
    );
    let routed = rps_at("routed");
    let routed_ratio = routed / multiplexed.max(1e-9);
    let single_core = std::thread::available_parallelism().map(|n| n.get() == 1).unwrap_or(false);
    if single_core && !routed_ratio_explicit {
        min_routed_ratio = 0.65;
        println!(
            "single-CPU host: router shares the core with client and shards, so its \
             per-request cost cannot be hidden; routed floor relaxed to {min_routed_ratio:.2}"
        );
    }
    if routed_ratio < min_routed_ratio {
        eprintln!(
            "FAIL: routed/direct throughput ratio {routed_ratio:.3} at {GATED_CONNS} connections \
             is below the {min_routed_ratio:.2} floor ({routed:.0} vs {multiplexed:.0} req/s)"
        );
        std::process::exit(1);
    }
    println!(
        "router overhead floor met at {GATED_CONNS} connections: routed {routed:.0} req/s \
         ≥ {min_routed_ratio:.2}× direct {multiplexed:.0} req/s"
    );
}
