//! Figure 8 — execution-time overhead of SeMPE on the djpeg workload,
//! three output formats × four input sizes.
//!
//! Paper: overheads between 31% and 87% across formats, essentially
//! independent of the input size (the image is decoded block by block).
//!
//! Usage: `cargo run --release -p sempe-bench --bin fig8 [--large]`

use sempe_bench::{par_map, run_backend, BackendRun};
use sempe_workloads::djpeg::{djpeg_program, DjpegParams, OutputFormat};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    // The paper's inputs are 256k–2048k JPEG files; one of our blocks
    // models 64 coefficients (512 B of image state), so the sweep below
    // covers 16 KB – 256 KB of secret image — past DL1 (32 KB) and up to
    // L2 capacity, preserving the cache-pressure regime.
    let sizes: &[usize] = if large { &[64, 128, 256, 512] } else { &[32, 64, 128, 256] };

    println!("Figure 8: djpeg execution-time overhead over the unprotected baseline");
    println!("paper reference: 31%..87% across formats; size-independent");
    println!();
    println!(
        "{:6} {:>10} {:>14} {:>14} {:>10}",
        "format", "blocks", "base cycles", "sempe cycles", "overhead"
    );

    // All (format × size × backend) runs are independent: fan them out.
    let configs: Vec<(OutputFormat, usize)> = OutputFormat::ALL
        .iter()
        .flat_map(|&format| sizes.iter().map(move |&blocks| (format, blocks)))
        .collect();
    let jobs: Vec<(usize, BackendRun)> = (0..configs.len())
        .flat_map(|i| [(i, BackendRun::Baseline), (i, BackendRun::Sempe)])
        .collect();
    let runs = par_map(&jobs, |&(i, which)| {
        let (format, blocks) = configs[i];
        let p = DjpegParams { format, blocks, seed: 0xDEC0DE };
        run_backend(&djpeg_program(&p), which, u64::MAX)
    });

    for (i, &(format, blocks)) in configs.iter().enumerate() {
        let (base, sempe) = (&runs[2 * i], &runs[2 * i + 1]);
        assert_eq!(base.outputs, sempe.outputs, "decode result mismatch");
        let overhead = (sempe.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
        println!(
            "{:6} {:>10} {:>14} {:>14} {:>9.1}%",
            format.name(),
            blocks,
            base.cycles,
            sempe.cycles,
            overhead
        );
        if blocks == *sizes.last().expect("nonempty sizes") {
            println!();
        }
    }
}
