//! Figure 8 — execution-time overhead of SeMPE on the djpeg workload,
//! three output formats × four input sizes.
//!
//! Paper: overheads between 31% and 87% across formats, essentially
//! independent of the input size (the image is decoded block by block).
//!
//! Usage: `cargo run --release -p sempe-bench --bin fig8 [--large]`

use sempe_bench::{run_backend, BackendRun};
use sempe_workloads::djpeg::{djpeg_program, DjpegParams, OutputFormat};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    // The paper's inputs are 256k–2048k JPEG files; one of our blocks
    // models 64 coefficients (512 B of image state), so the sweep below
    // covers 16 KB – 256 KB of secret image — past DL1 (32 KB) and up to
    // L2 capacity, preserving the cache-pressure regime.
    let sizes: &[usize] = if large { &[64, 128, 256, 512] } else { &[32, 64, 128, 256] };

    println!("Figure 8: djpeg execution-time overhead over the unprotected baseline");
    println!("paper reference: 31%..87% across formats; size-independent");
    println!();
    println!(
        "{:6} {:>10} {:>14} {:>14} {:>10}",
        "format", "blocks", "base cycles", "sempe cycles", "overhead"
    );
    for format in OutputFormat::ALL {
        for &blocks in sizes {
            let p = DjpegParams { format, blocks, seed: 0xDEC0DE };
            let prog = djpeg_program(&p);
            let base = run_backend(&prog, BackendRun::Baseline, u64::MAX);
            let sempe = run_backend(&prog, BackendRun::Sempe, u64::MAX);
            assert_eq!(base.outputs, sempe.outputs, "decode result mismatch");
            let overhead = (sempe.cycles as f64 / base.cycles as f64 - 1.0) * 100.0;
            println!(
                "{:6} {:>10} {:>14} {:>14} {:>9.1}%",
                format.name(),
                blocks,
                base.cycles,
                sempe.cycles,
                overhead
            );
        }
        println!();
    }
}
