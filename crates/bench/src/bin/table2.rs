//! Table II — the baseline microarchitecture model.
//!
//! Prints the *live* simulator configuration so the reproduction's
//! parameters can be diffed against the paper's table directly.

use sempe_sim::SimConfig;

fn main() {
    let c = SimConfig::paper();
    println!("Table II: baseline microarchitecture model (live SimConfig)");
    println!("============================================================");
    let rows: Vec<(&str, String)> = vec![
        ("clock frequency", "2.0 GHz (cycles reported; frequency nominal)".into()),
        (
            "branch predictor",
            format!(
                "TAGE ({} tagged tables, hist {:?}) + ITTAGE, RAS depth {}",
                c.bpred.tage_hist_lens.len(),
                c.bpred.tage_hist_lens,
                c.bpred.ras_depth
            ),
        ),
        ("fetch", format!("{} instructions / cycle", c.core.fetch_width)),
        ("decode", format!("{} uops / cycle", c.core.decode_width)),
        ("rename", format!("{} uops / cycle", c.core.rename_width)),
        ("issue (micro-ops)", format!("{} uops", c.core.issue_width)),
        ("load issue", format!("{} loads / cycle", c.core.load_issue_width)),
        ("retire", format!("{} uops / cycle", c.core.retire_width)),
        ("reorder buffer (ROB)", format!("{} uops", c.core.rob_entries)),
        ("physical registers", format!("{} INT, {} FP", c.core.int_phys_regs, c.core.fp_phys_regs)),
        (
            "issue buffers",
            format!("{} INT / {} FP uops", c.core.int_iq_entries, c.core.fp_iq_entries),
        ),
        ("load/store queue", format!("{}+{} entries", c.core.lq_entries, c.core.sq_entries)),
        ("DL1 cache", format!("{} KB, {}-way assoc.", c.mem.dl1.size_bytes / 1024, c.mem.dl1.ways)),
        ("IL1 cache", format!("{} KB, {}-way assoc.", c.mem.il1.size_bytes / 1024, c.mem.il1.ways)),
        ("L2 cache", format!("{} KB, {}-way assoc.", c.mem.l2.size_bytes / 1024, c.mem.l2.ways)),
        (
            "prefetcher",
            format!(
                "stride pref. (L1): {}, stream pref. (L2): {}",
                c.mem.stride_prefetch, c.mem.stream_prefetch
            ),
        ),
        (
            "SPM size",
            format!(
                "{} KB (up to {} snapshots supported)",
                c.sempe.spm.size_bytes / 1024,
                c.sempe.spm.max_snapshots()
            ),
        ),
        ("SPM throughput", format!("{} Bytes/cycle R/W", c.sempe.spm.throughput_bytes_per_cycle)),
        ("jbTable", format!("{} entries (LIFO)", c.sempe.jbtable_entries)),
    ];
    for (k, v) in rows {
        println!("{k:24} {v}");
    }
}
