//! Figure 9 — cache miss rates (IL1 / DL1 / L2) for djpeg, baseline vs
//! SeMPE, across output formats and input sizes.
//!
//! Paper: IL1 misses are low and size-independent; DL1 stays low thanks
//! to ShadowMemory locality; L2 rates are higher and more sensitive to
//! the output format.
//!
//! Usage: `cargo run --release -p sempe-bench --bin fig9 [--large]`

use sempe_bench::{par_map, run_backend, BackendRun};
use sempe_workloads::djpeg::{djpeg_program, DjpegParams, OutputFormat};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let sizes: &[usize] = if large { &[64, 128, 256, 512] } else { &[32, 64, 128, 256] };

    println!("Figure 9: cache miss rates, baseline (b) vs SeMPE (s); lower is better");
    println!();
    println!(
        "{:6} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "format", "blocks", "IL1 b", "IL1 s", "DL1 b", "DL1 s", "L2 b", "L2 s"
    );

    let jobs: Vec<(OutputFormat, usize, BackendRun)> = OutputFormat::ALL
        .iter()
        .flat_map(|&format| {
            sizes.iter().flat_map(move |&blocks| {
                [(format, blocks, BackendRun::Baseline), (format, blocks, BackendRun::Sempe)]
            })
        })
        .collect();
    let runs = par_map(&jobs, |&(format, blocks, which)| {
        let p = DjpegParams { format, blocks, seed: 0xDEC0DE };
        run_backend(&djpeg_program(&p), which, u64::MAX)
    });

    let mut next = runs.iter();
    for format in OutputFormat::ALL {
        for &blocks in sizes {
            let base = next.next().expect("job per config");
            let sempe = next.next().expect("job per config");
            let pct = |r: f64| format!("{:.3}%", r * 100.0);
            println!(
                "{:6} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
                format.name(),
                blocks,
                pct(base.stats.il1.miss_rate()),
                pct(sempe.stats.il1.miss_rate()),
                pct(base.stats.dl1.miss_rate()),
                pct(sempe.stats.dl1.miss_rate()),
                pct(base.stats.l2.miss_rate()),
                pct(sempe.stats.l2.miss_rate()),
            );
        }
        println!();
    }
}
