//! Figure 9 — cache miss rates (IL1 / DL1 / L2) for djpeg, baseline vs
//! SeMPE, across output formats and input sizes.
//!
//! Paper: IL1 misses are low and size-independent; DL1 stays low thanks
//! to ShadowMemory locality; L2 rates are higher and more sensitive to
//! the output format.
//!
//! Usage: `cargo run --release -p sempe-bench --bin fig9 [--large]`

use sempe_bench::{run_backend, BackendRun};
use sempe_workloads::djpeg::{djpeg_program, DjpegParams, OutputFormat};

fn main() {
    let large = std::env::args().any(|a| a == "--large");
    let sizes: &[usize] = if large { &[64, 128, 256, 512] } else { &[32, 64, 128, 256] };

    println!("Figure 9: cache miss rates, baseline (b) vs SeMPE (s); lower is better");
    println!();
    println!(
        "{:6} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "format", "blocks", "IL1 b", "IL1 s", "DL1 b", "DL1 s", "L2 b", "L2 s"
    );
    for format in OutputFormat::ALL {
        for &blocks in sizes {
            let p = DjpegParams { format, blocks, seed: 0xDEC0DE };
            let prog = djpeg_program(&p);
            let base = run_backend(&prog, BackendRun::Baseline, u64::MAX);
            let sempe = run_backend(&prog, BackendRun::Sempe, u64::MAX);
            let pct = |r: f64| format!("{:.3}%", r * 100.0);
            println!(
                "{:6} {:>7} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
                format.name(),
                blocks,
                pct(base.stats.il1.miss_rate()),
                pct(sempe.stats.il1.miss_rate()),
                pct(base.stats.dl1.miss_rate()),
                pct(sempe.stats.dl1.miss_rate()),
                pct(base.stats.l2.miss_rate()),
                pct(sempe.stats.l2.miss_rate()),
            );
        }
        println!();
    }
}
