//! Ablations of the SeMPE design choices (DESIGN.md §6), reporting
//! *simulated cycles* — the scientific measurement — for each variant.
//!
//! * **SPM throughput** — Table II provisions 64 B/cycle; how sensitive
//!   is the overhead to the scratchpad port width?
//! * **ArchRS vs PhyRS** — the paper rejected physical-register
//!   snapshots (§IV-F) because spilling 512 physical registers per
//!   nesting level costs too much; this quantifies the decision.
//! * **Pipeline drains** — the three drains of Figure 6 are part of the
//!   security argument; the drainless variant is insecure but shows what
//!   they cost.
//! * **Constant-time merge** — reading the scratchpad for all modified
//!   registers regardless of the outcome costs cycles; skipping it
//!   (insecure!) shows the price of the timing guarantee.
//!
//! Usage: `cargo run --release -p sempe-bench --bin ablations`

use sempe_bench::par_map;
use sempe_compile::{compile, Backend};
use sempe_isa::reg::NUM_ARCH_REGS;
use sempe_sim::{SimConfig, Simulator};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn measure(cw: &sempe_compile::CompiledWorkload, config: SimConfig) -> u64 {
    let mut sim = Simulator::new(cw.program(), config).expect("sim builds");
    sim.run(u64::MAX).expect("halts").cycles()
}

fn main() {
    // Alternating secret bits so both Taken and NotTaken outcomes occur
    // (the constant-time-merge ablation only differs on Taken exits).
    let p = MicroParams {
        scale: 32,
        secrets: 0b101010,
        ..MicroParams::new(WorkloadKind::Fibonacci, 6, 2)
    };
    let prog = fig7_program(&p);
    let cw_base = compile(&prog, Backend::Baseline).expect("compiles");
    let cw = compile(&prog, Backend::Sempe).expect("compiles");

    // Build every variant configuration up front and measure the whole
    // set concurrently; printing then just walks the results in order.
    // A job is (run the baseline binary?, simulator configuration).
    let mut jobs: Vec<(bool, SimConfig)> =
        vec![(true, SimConfig::baseline()), (false, SimConfig::paper())];

    let tputs = [8u64, 16, 32, 64, 128, 256];
    for tput in tputs {
        let mut config = SimConfig::paper();
        config.sempe.spm.throughput_bytes_per_cycle = tput;
        jobs.push((false, config));
    }

    let reg_policies = [("ArchRS", NUM_ARCH_REGS), ("PhyRS", 512)];
    for (_, regs) in reg_policies {
        let mut config = SimConfig::paper();
        // Scale the per-snapshot footprint with the register count and
        // give PhyRS enough scratchpad for the same nesting depth (the
        // paper's point is the *spill traffic*, not capacity).
        let per_reg = config.sempe.spm.snapshot_bytes / NUM_ARCH_REGS;
        config.sempe.spm.snapshot_bytes = per_reg * regs;
        config.sempe.spm.size_bytes = config.sempe.spm.snapshot_bytes * 30;
        jobs.push((false, config));
    }

    let drain_policies = [("3 drains (paper)", true), ("drainless", false)];
    for (_, drains) in drain_policies {
        let mut config = SimConfig::paper();
        config.sempe.drains_enabled = drains;
        jobs.push((false, config));
    }

    let merge_policies = [("constant-time", true), ("outcome-dependent", false)];
    for (_, ct) in merge_policies {
        let mut config = SimConfig::paper();
        config.sempe.constant_time_merge = ct;
        jobs.push((false, config));
    }

    let cycles = par_map(&jobs, |&(use_base, config)| {
        measure(if use_base { &cw_base } else { &cw }, config)
    });
    let baseline_cycles = cycles[0];
    let reference = cycles[1];
    let mut next = cycles.iter().skip(2);

    println!("Ablations on fibonacci W=6 (baseline {baseline_cycles} cycles, SeMPE reference {reference})");
    println!();

    println!("1) Scratchpad throughput sweep (Table II: 64 B/cycle)");
    println!("{:>12} {:>12} {:>10} {:>12}", "B/cycle", "cycles", "slowdown", "vs 64B/c");
    for tput in tputs {
        let cycles = *next.next().expect("job per variant");
        println!(
            "{:>12} {:>12} {:>9.2}x {:>+11.1}%",
            tput,
            cycles,
            cycles as f64 / baseline_cycles as f64,
            (cycles as f64 / reference as f64 - 1.0) * 100.0
        );
    }
    println!();

    println!("2) Snapshot policy: ArchRS (48 architectural) vs PhyRS (512 physical)");
    for (label, regs) in reg_policies {
        let cycles = *next.next().expect("job per variant");
        println!(
            "{:>12} {:>12} cycles {:>9.2}x baseline ({} regs/snapshot)",
            label,
            cycles,
            cycles as f64 / baseline_cycles as f64,
            regs
        );
    }
    println!();

    println!("3) Pipeline drains (Figure 6) — drainless is INSECURE, shown for cost only");
    for (label, _) in drain_policies {
        let cycles = *next.next().expect("job per variant");
        println!(
            "{:>18} {:>12} cycles {:>9.2}x baseline",
            label,
            cycles,
            cycles as f64 / baseline_cycles as f64
        );
    }
    println!();

    println!("4) Constant-time merge — skipping SPM reads on taken outcomes is INSECURE");
    for (label, _) in merge_policies {
        let cycles = *next.next().expect("job per variant");
        println!(
            "{:>18} {:>12} cycles {:>9.2}x baseline",
            label,
            cycles,
            cycles as f64 / baseline_cycles as f64
        );
    }
    println!();

    println!("5) jbTable depth vs deepest supported nesting (W=depth microbenchmark)");
    println!("{:>8} {:>24}", "entries", "W=6 nest result");
    let depths = [4usize, 6, 8, 30];
    let outcomes = par_map(&depths, |&entries| {
        let mut config = SimConfig::paper();
        config.sempe.jbtable_entries = entries;
        let mut sim = Simulator::new(cw.program(), config).expect("sim builds");
        sim.run(u64::MAX).map(|r| r.cycles()).map_err(|e| e.to_string())
    });
    for (entries, outcome) in depths.iter().zip(&outcomes) {
        match outcome {
            Ok(cycles) => println!("{entries:>8} {cycles:>20} cycles"),
            Err(e) => println!("{entries:>8} fault: {e}"),
        }
    }
}
