//! Figure 10a — microbenchmark execution-time slowdown over the baseline
//! as the secret-branch nesting depth W grows, SeMPE vs CTE (FaCT).
//!
//! Paper: at W=10 SeMPE slows execution by 8.4–10.6× (consistent with
//! W+1 = 11 branch paths), while CTE ranges 12.9–187.3×; at W=1 CTE is
//! already 3× (Fibonacci) to 32× (Queens). CTE is up to 18× slower than
//! SeMPE.
//!
//! Usage: `cargo run --release -p sempe-bench --bin fig10a [--full]`
//! (`--full` sweeps every W in 1..=10 at larger scales; the default
//! sweep uses W ∈ {1,2,4,6,8,10} at small scales).

use sempe_bench::{par_map, run_backend, BackendRun, RunOutcome};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};

fn scale_for(kind: WorkloadKind, full: bool) -> u32 {
    match (kind, full) {
        (WorkloadKind::Fibonacci, false) => 96,
        (WorkloadKind::Fibonacci, true) => 256,
        (WorkloadKind::Ones, false) => 64,
        (WorkloadKind::Ones, true) => 128,
        (WorkloadKind::Quicksort, false) => 16,
        (WorkloadKind::Quicksort, true) => 32,
        (WorkloadKind::Queens, false) => 4,
        (WorkloadKind::Queens, true) => 5,
    }
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ws: Vec<usize> = if full { (1..=10).collect() } else { vec![1, 2, 4, 6, 8, 10] };
    let iters = 2;

    println!("Figure 10a: microbenchmark slowdown vs nesting depth W (log-scale data)");
    println!("paper reference: SeMPE 8.4-10.6x at W=10; FaCT 3-32x at W=1, 12.9-187.3x at W=10");
    println!();
    // One flat (kind × W × backend) job grid — a single fan-out keeps
    // one worker per core instead of nesting parallel regions.
    let configs: Vec<(WorkloadKind, usize)> =
        WorkloadKind::ALL.iter().flat_map(|&kind| ws.iter().map(move |&w| (kind, w))).collect();
    let jobs: Vec<(usize, BackendRun)> =
        (0..configs.len()).flat_map(|i| BackendRun::ALL.map(|which| (i, which))).collect();
    let runs: Vec<RunOutcome> = par_map(&jobs, |&(i, which)| {
        let (kind, w) = configs[i];
        let scale = scale_for(kind, full);
        let p = MicroParams { scale, iters, secrets: 0, ..MicroParams::new(kind, w, iters) };
        run_backend(&fig7_program(&p), which, u64::MAX)
    });
    let results: Vec<[&RunOutcome; 3]> =
        (0..configs.len()).map(|i| [&runs[3 * i], &runs[3 * i + 1], &runs[3 * i + 2]]).collect();

    let mut max_ratio = 0.0f64;
    let mut rows = configs.iter().zip(&results);
    for kind in WorkloadKind::ALL {
        let scale = scale_for(kind, full);
        println!(
            "{:10} (scale {scale}, iters {iters}): {:>2} {:>12} {:>9} {:>9} {:>10}",
            kind.name(),
            "W",
            "base cyc",
            "SeMPE x",
            "CTE x",
            "CTE/SeMPE"
        );
        for &w in &ws {
            let (_, [base, sempe, cte]) = rows.next().expect("row per config");
            assert_eq!(base.outputs, sempe.outputs, "{} W={w} sempe mismatch", kind.name());
            assert_eq!(base.outputs, cte.outputs, "{} W={w} cte mismatch", kind.name());
            let sx = sempe.cycles as f64 / base.cycles as f64;
            let cx = cte.cycles as f64 / base.cycles as f64;
            max_ratio = max_ratio.max(cx / sx);
            println!(
                "{:38} {:>2} {:>12} {:>8.2}x {:>8.2}x {:>9.2}x",
                "",
                w,
                base.cycles,
                sx,
                cx,
                cx / sx
            );
        }
        println!();
    }
    println!("max CTE/SeMPE ratio observed: {max_ratio:.1}x (paper: up to 18x)");
}
