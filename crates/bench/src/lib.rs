//! # sempe-bench — experiment harnesses
//!
//! One binary per table/figure of the paper (see DESIGN.md's experiment
//! index), plus criterion benches and ablations. This library hosts the
//! shared runner utilities.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod runner;

pub use runner::{ideal_counts, ideal_cycles_micro, par_map, run_backend, BackendRun, RunOutcome};
