//! Golden cycle-count regression tests.
//!
//! The hot-loop optimizations of the simulator (dense instruction fetch,
//! event-queue completions, scratch-buffer stages, memory page cache)
//! must preserve simulated timing **bit-for-bit**: they change how fast
//! the host runs the model, never what the model computes. These tests
//! pin the exact cycle count of every (workload × backend) pair below;
//! any drift is a timing-model regression, not a tolerable delta.
//!
//! To regenerate after an *intentional* timing-model change:
//!
//! ```text
//! SEMPE_PRINT_GOLDEN=1 cargo test -p sempe-bench --test golden_cycles -- --nocapture
//! ```

use sempe_bench::{run_backend, BackendRun};
use sempe_compile::wir::WirProgram;
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};
use sempe_workloads::rsa::{modexp_program, ModexpParams};

/// The pinned configurations: name, program, `[baseline, sempe, cte]`
/// cycle counts.
fn golden_table() -> Vec<(&'static str, WirProgram, [u64; 3])> {
    let micro = |kind: WorkloadKind, scale: u32| {
        fig7_program(&MicroParams { scale, secrets: 0b01, ..MicroParams::new(kind, 2, 2) })
    };
    vec![
        ("micro/fibonacci", micro(WorkloadKind::Fibonacci, 8), [819, 2406, 3804]),
        ("micro/ones", micro(WorkloadKind::Ones, 8), [1139, 3258, 5663]),
        ("micro/quicksort", micro(WorkloadKind::Quicksort, 8), [3443, 11004, 102721]),
        ("micro/queens", micro(WorkloadKind::Queens, 4), [5528, 17240, 483309]),
        ("rsa/modexp8", modexp_program(&ModexpParams::default()), [693, 1675, 748]),
    ]
}

#[test]
fn cycle_counts_are_bit_identical_to_golden() {
    let print = std::env::var("SEMPE_PRINT_GOLDEN").is_ok();
    let mut failures = Vec::new();
    for (name, prog, golden) in golden_table() {
        let mut got = [0u64; 3];
        for (i, which) in BackendRun::ALL.iter().enumerate() {
            got[i] = run_backend(&prog, *which, 200_000_000).cycles;
        }
        if print {
            println!("(\"{name}\", ..., [{}, {}, {}]),", got[0], got[1], got[2]);
        }
        if got != golden {
            failures.push(format!("{name}: golden {golden:?} != measured {got:?}"));
        }
    }
    if !print {
        assert!(failures.is_empty(), "timing drift detected:\n{}", failures.join("\n"));
    }
}

/// Fuzz-corpus seeds double as timing goldens: the differential fuzzer
/// pins their *functional* behavior, this table pins their *simulated
/// timing*, so a timing-model drift that happens to stay functionally
/// correct still trips CI. Regenerate with `SEMPE_PRINT_GOLDEN=1` as
/// above after an intentional model change.
#[test]
fn fuzz_corpus_seeds_cycle_golden() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../fuzz/corpus");
    let table: [(&str, [u64; 3]); 4] = [
        ("ct_modexp.wir", [457, 1003, 460]),
        ("ct_nested_regions_arrays.wir", [337, 755, 409]),
        // The tiered-differential seed: nested regions split across a
        // fast-forward gap (this row pins its full-detailed timing; the
        // tiered tests compare against these same runs).
        ("tiered_regions_across_gap.wir", [3311, 3820, 3253]),
        // The stall-heavy cycle-skip seed: almost every cycle sits in a
        // quiescent miss window, so this row pins the skip path's timing
        // (a wake source that fires early or late moves these numbers).
        ("correctness_stall_chase.wir", [139_678, 139_678, 139_678]),
    ];
    let print = std::env::var("SEMPE_PRINT_GOLDEN").is_ok();
    let mut failures = Vec::new();
    for (file, golden) in table {
        let src = std::fs::read_to_string(corpus.join(file)).expect("corpus seed readable");
        let prog = sempe_compile::parse_wir(&src).expect("corpus seed parses").program;
        let mut got = [0u64; 3];
        for (i, which) in BackendRun::ALL.iter().enumerate() {
            got[i] = run_backend(&prog, *which, 200_000_000).cycles;
        }
        if print {
            println!("(\"{file}\", [{}, {}, {}]),", got[0], got[1], got[2]);
        }
        if got != golden {
            failures.push(format!("{file}: golden {golden:?} != measured {got:?}"));
        }
    }
    if !print {
        assert!(failures.is_empty(), "fuzz-seed timing drift:\n{}", failures.join("\n"));
    }
}

/// Cycle skipping must be semantically invisible on every golden
/// workload and backend: forced classic 1-cycle stepping and the
/// default next-event fast-forward must agree on cycles, the complete
/// statistics block, outputs, and `Strictness::Full` observation
/// traces. (The golden tables above already pin skip-enabled runs to
/// numbers that predate skipping; this test additionally compares the
/// two modes' full observable state directly.)
#[test]
fn cycle_skip_matches_classic_stepping_bit_for_bit() {
    use sempe_compile::compile;
    use sempe_core::{first_divergence, Strictness};
    use sempe_sim::Simulator;

    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../fuzz/corpus");
    let mut programs: Vec<(String, WirProgram)> =
        golden_table().into_iter().map(|(n, p, _)| (n.to_string(), p)).collect();
    let chase = std::fs::read_to_string(corpus.join("correctness_stall_chase.wir"))
        .expect("corpus seed readable");
    programs.push((
        "corpus/stall_chase".to_string(),
        sempe_compile::parse_wir(&chase).expect("parses").program,
    ));

    for (name, prog) in &programs {
        for which in BackendRun::ALL {
            let (backend, config) = which.pair();
            let cw = compile(prog, backend).expect("compiles");
            let run = |classic: bool| {
                let mut c = config.with_trace();
                if classic {
                    c = c.with_classic_stepping();
                }
                let mut sim = Simulator::new(cw.program(), c).expect("builds");
                let res = sim.run(200_000_000).expect("halts");
                let outputs = cw.read_outputs(sim.mem());
                let trace = sim.trace().clone();
                (res.stats, outputs, trace, sim.skip_counters())
            };
            let (skip_stats, skip_out, skip_trace, (_, skips)) = run(false);
            let (classic_stats, classic_out, classic_trace, classic_counters) = run(true);
            assert_eq!(skip_stats, classic_stats, "{name}/{which:?}: stats diverge");
            assert_eq!(skip_out, classic_out, "{name}/{which:?}: outputs diverge");
            assert_eq!(
                first_divergence(&skip_trace, &classic_trace, Strictness::Full),
                None,
                "{name}/{which:?}: traces diverge"
            );
            assert_eq!(classic_counters, (0, 0), "{name}/{which:?}: classic must not skip");
            if *name == "corpus/stall_chase" {
                assert!(skips > 0, "{name}/{which:?}: the stall seed must actually skip");
            }
        }
    }
}

/// The same program must also produce identical *architectural* results
/// across backends — outputs are the cheap invariant that catches a
/// functional (not timing) break in the fast paths.
#[test]
fn outputs_agree_across_backends() {
    for (name, prog, _) in golden_table() {
        let base = run_backend(&prog, BackendRun::Baseline, 200_000_000);
        let sempe = run_backend(&prog, BackendRun::Sempe, 200_000_000);
        let cte = run_backend(&prog, BackendRun::Cte, 200_000_000);
        assert_eq!(base.outputs, sempe.outputs, "{name}: sempe output mismatch");
        assert_eq!(base.outputs, cte.outputs, "{name}: cte output mismatch");
    }
}
