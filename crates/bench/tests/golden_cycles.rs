//! Golden cycle-count regression tests.
//!
//! The hot-loop optimizations of the simulator (dense instruction fetch,
//! event-queue completions, scratch-buffer stages, memory page cache)
//! must preserve simulated timing **bit-for-bit**: they change how fast
//! the host runs the model, never what the model computes. These tests
//! pin the exact cycle count of every (workload × backend) pair below;
//! any drift is a timing-model regression, not a tolerable delta.
//!
//! To regenerate after an *intentional* timing-model change:
//!
//! ```text
//! SEMPE_PRINT_GOLDEN=1 cargo test -p sempe-bench --test golden_cycles -- --nocapture
//! ```

use sempe_bench::{run_backend, BackendRun};
use sempe_compile::wir::WirProgram;
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};
use sempe_workloads::rsa::{modexp_program, ModexpParams};

/// The pinned configurations: name, program, `[baseline, sempe, cte]`
/// cycle counts.
fn golden_table() -> Vec<(&'static str, WirProgram, [u64; 3])> {
    let micro = |kind: WorkloadKind, scale: u32| {
        fig7_program(&MicroParams { scale, secrets: 0b01, ..MicroParams::new(kind, 2, 2) })
    };
    vec![
        ("micro/fibonacci", micro(WorkloadKind::Fibonacci, 8), [819, 2406, 3804]),
        ("micro/ones", micro(WorkloadKind::Ones, 8), [1139, 3258, 5663]),
        ("micro/quicksort", micro(WorkloadKind::Quicksort, 8), [3443, 11004, 102721]),
        ("micro/queens", micro(WorkloadKind::Queens, 4), [5528, 17240, 483309]),
        ("rsa/modexp8", modexp_program(&ModexpParams::default()), [693, 1675, 748]),
    ]
}

#[test]
fn cycle_counts_are_bit_identical_to_golden() {
    let print = std::env::var("SEMPE_PRINT_GOLDEN").is_ok();
    let mut failures = Vec::new();
    for (name, prog, golden) in golden_table() {
        let mut got = [0u64; 3];
        for (i, which) in BackendRun::ALL.iter().enumerate() {
            got[i] = run_backend(&prog, *which, 200_000_000).cycles;
        }
        if print {
            println!("(\"{name}\", ..., [{}, {}, {}]),", got[0], got[1], got[2]);
        }
        if got != golden {
            failures.push(format!("{name}: golden {golden:?} != measured {got:?}"));
        }
    }
    if !print {
        assert!(failures.is_empty(), "timing drift detected:\n{}", failures.join("\n"));
    }
}

/// Fuzz-corpus seeds double as timing goldens: the differential fuzzer
/// pins their *functional* behavior, this table pins their *simulated
/// timing*, so a timing-model drift that happens to stay functionally
/// correct still trips CI. Regenerate with `SEMPE_PRINT_GOLDEN=1` as
/// above after an intentional model change.
#[test]
fn fuzz_corpus_seeds_cycle_golden() {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../fuzz/corpus");
    let table: [(&str, [u64; 3]); 2] =
        [("ct_modexp.wir", [457, 1003, 460]), ("ct_nested_regions_arrays.wir", [337, 755, 409])];
    let print = std::env::var("SEMPE_PRINT_GOLDEN").is_ok();
    let mut failures = Vec::new();
    for (file, golden) in table {
        let src = std::fs::read_to_string(corpus.join(file)).expect("corpus seed readable");
        let prog = sempe_compile::parse_wir(&src).expect("corpus seed parses").program;
        let mut got = [0u64; 3];
        for (i, which) in BackendRun::ALL.iter().enumerate() {
            got[i] = run_backend(&prog, *which, 200_000_000).cycles;
        }
        if print {
            println!("(\"{file}\", [{}, {}, {}]),", got[0], got[1], got[2]);
        }
        if got != golden {
            failures.push(format!("{file}: golden {golden:?} != measured {got:?}"));
        }
    }
    if !print {
        assert!(failures.is_empty(), "fuzz-seed timing drift:\n{}", failures.join("\n"));
    }
}

/// The same program must also produce identical *architectural* results
/// across backends — outputs are the cheap invariant that catches a
/// functional (not timing) break in the fast paths.
#[test]
fn outputs_agree_across_backends() {
    for (name, prog, _) in golden_table() {
        let base = run_backend(&prog, BackendRun::Baseline, 200_000_000);
        let sempe = run_backend(&prog, BackendRun::Sempe, 200_000_000);
        let cte = run_backend(&prog, BackendRun::Cte, 200_000_000);
        assert_eq!(base.outputs, sempe.outputs, "{name}: sempe output mismatch");
        assert_eq!(base.outputs, cte.outputs, "{name}: cte output mismatch");
    }
}
