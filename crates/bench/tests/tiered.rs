//! Tiered-execution equivalence tests.
//!
//! Tiered stepping fast-forwards functionally between regions of
//! interest and runs the detailed pipeline only inside them. The
//! correctness claim (see `sempe_sim::tier`) is that on workloads whose
//! ROI boundaries are secure-region entries — where the paper's drain
//! semantics quiesce the machine anyway — the detailed portion is
//! **bit-for-bit** the same execution a full detailed run would have
//! produced: per-span ROI cycle counts, committed instruction totals,
//! architectural outputs, and `Strictness::Full` observation traces
//! inside each span (rebased via `ObservationTrace::window`).
//!
//! Every golden workload and fuzz-corpus seed is checked on all three
//! backends; a drift here means the fast-forward warmup model stopped
//! reproducing the timed state the detailed engine would have had.

use sempe_bench::BackendRun;
use sempe_compile::wir::WirProgram;
use sempe_compile::{compile, parse_wir};
use sempe_core::{first_divergence, Strictness};
use sempe_sim::{Roi, SimStats, Simulator, Stepping};
use sempe_workloads::micro::{fig7_program, MicroParams, WorkloadKind};
use sempe_workloads::rsa::{modexp_program, ModexpParams};

fn programs() -> Vec<(String, WirProgram)> {
    let micro = |kind: WorkloadKind, scale: u32| {
        fig7_program(&MicroParams { scale, secrets: 0b01, ..MicroParams::new(kind, 2, 2) })
    };
    let mut out = vec![
        ("micro/fibonacci".to_string(), micro(WorkloadKind::Fibonacci, 8)),
        ("micro/ones".to_string(), micro(WorkloadKind::Ones, 8)),
        ("micro/quicksort".to_string(), micro(WorkloadKind::Quicksort, 8)),
        ("micro/queens".to_string(), micro(WorkloadKind::Queens, 4)),
        ("rsa/modexp8".to_string(), modexp_program(&ModexpParams::default())),
    ];
    for seed in ["ct_modexp.wir", "correctness_stall_chase.wir"] {
        out.push((format!("corpus/{seed}"), corpus_seed(seed)));
    }
    out
}

fn corpus_seed(seed: &str) -> WirProgram {
    let corpus = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../fuzz/corpus");
    let src = std::fs::read_to_string(corpus.join(seed)).expect("corpus seed readable");
    parse_wir(&src).expect("seed parses").program
}

type RunState = (SimStats, Vec<u64>, sempe_core::ObservationTrace, Vec<(u64, u64)>);

fn run_with(
    cw: &sempe_compile::CompiledWorkload,
    config: sempe_sim::SimConfig,
    stepping: Stepping,
) -> RunState {
    let c = config.with_trace().with_stepping(stepping);
    let mut sim = Simulator::new(cw.program(), c).expect("builds");
    let res = sim.run(200_000_000).expect("halts");
    (res.stats, cw.read_outputs(sim.mem()), sim.trace().clone(), sim.roi_spans().to_vec())
}

/// The headline claim: with `Roi::Regions` (secure regions are the
/// ROI), a tiered run's detailed spans reproduce the full detailed
/// run's spans exactly — same count, same durations, same committed
/// totals, same outputs, and identical full-strictness event windows.
#[test]
fn tiered_roi_matches_full_detailed_bit_for_bit() {
    for (name, prog) in programs() {
        for which in BackendRun::ALL {
            let (backend, config) = which.pair();
            let cw = compile(&prog, backend).expect("compiles");
            let (full_stats, full_out, full_trace, full_spans) =
                run_with(&cw, config, Stepping::Skip);
            let (t_stats, t_out, t_trace, t_spans) = run_with(&cw, config, Stepping::Tiered);

            if std::env::var("SEMPE_TIERED_DEBUG").is_ok() {
                println!("{name}/{which:?}: full spans {full_spans:?}");
                println!("{name}/{which:?}: tier spans {t_spans:?}");
                println!(
                    "{name}/{which:?}: full cycles {} tiered detailed cycles {} ff {}",
                    full_stats.cycles, t_stats.cycles, t_stats.ff_committed
                );
            }
            assert_eq!(full_out, t_out, "{name}/{which:?}: outputs diverge");
            assert_eq!(
                full_stats.committed, t_stats.committed,
                "{name}/{which:?}: committed totals diverge"
            );
            assert_eq!(
                full_stats.roi_cycles, t_stats.roi_cycles,
                "{name}/{which:?}: ROI cycle totals diverge"
            );
            assert_eq!(
                full_spans.len(),
                t_spans.len(),
                "{name}/{which:?}: ROI span counts diverge"
            );
            for (i, ((fo, fc), (to, tc))) in full_spans.iter().zip(&t_spans).enumerate() {
                assert_eq!(fc - fo, tc - to, "{name}/{which:?}: ROI span {i} durations diverge");
                // Compare events strictly after the entry cycle: on a
                // 12-wide machine, instructions *older* than the sJMP can
                // retire in the very cycle it reaches the ROB head, and a
                // full run traces those pre-region commits while a tiered
                // run has (correctly) fast-forwarded them. From the next
                // cycle on, only region instructions commit, and the
                // windows must be bit-identical.
                let fw = full_trace.window(*fo + 1, *fc);
                let tw = t_trace.window(*to + 1, *tc);
                assert_eq!(
                    first_divergence(&fw, &tw, Strictness::Full),
                    None,
                    "{name}/{which:?}: ROI span {i} observation traces diverge"
                );
            }
            // The point of the exercise: outside the spans the tiered
            // run must actually have fast-forwarded (every program here
            // has setup/teardown outside its secure regions; under the
            // Baseline backend secure decoration is stripped entirely,
            // so the whole run fast-forwards).
            assert!(t_stats.ff_committed > 0, "{name}/{which:?}: nothing fast-forwarded");
            assert!(
                t_stats.cycles <= full_stats.cycles,
                "{name}/{which:?}: tiered spent more detailed cycles than the full run"
            );
            if which == BackendRun::Baseline {
                // Baseline decode strips secure decoration, so the whole
                // program fast-forwards except the HALT itself (the
                // boundary instruction always commits detailed).
                assert_eq!(
                    t_stats.ff_committed,
                    t_stats.committed - 1,
                    "{name}/{which:?}: baseline decode has no regions; all but HALT fast-forward"
                );
            }
        }
    }
}

/// The documented divergence budget, pinned on the workload that
/// exhibits it. `ct_nested_regions_arrays` enters its secure region
/// straight out of a stall-heavy cold-miss phase: in a full detailed
/// run the front end has run far ahead during those stalls, so the
/// region's code lines are already in the IL1 at entry, while a tiered
/// run hands off with fetch parked at the sJMP and pays those
/// instruction misses *inside* the ROI. Functional state stays exact
/// (outputs, committed totals, span counts); the ROI cycle estimate is
/// conservative — never faster than the full run — and bounded.
#[test]
fn tiered_divergence_budget_is_bounded_and_conservative() {
    let prog = corpus_seed("ct_nested_regions_arrays.wir");
    for which in BackendRun::ALL {
        let (backend, config) = which.pair();
        let cw = compile(&prog, backend).expect("compiles");
        let (full_stats, full_out, _, full_spans) = run_with(&cw, config, Stepping::Skip);
        let (t_stats, t_out, _, t_spans) = run_with(&cw, config, Stepping::Tiered);
        assert_eq!(full_out, t_out, "{which:?}: outputs diverge");
        assert_eq!(full_stats.committed, t_stats.committed, "{which:?}: committed diverge");
        assert_eq!(full_spans.len(), t_spans.len(), "{which:?}: span counts diverge");
        assert!(
            t_stats.roi_cycles >= full_stats.roi_cycles,
            "{which:?}: cold-entry divergence must be conservative (tiered {} < full {})",
            t_stats.roi_cycles,
            full_stats.roi_cycles
        );
        assert!(
            t_stats.roi_cycles <= full_stats.roi_cycles + full_stats.roi_cycles / 2,
            "{which:?}: ROI divergence blew the 50% budget (tiered {} vs full {})",
            t_stats.roi_cycles,
            full_stats.roi_cycles
        );
    }
}

/// Explicit measurement windows (`Roi::Window`) gate the fast-forward
/// by committed-instruction count. Window boundaries are not drain
/// points, so cycle counts inside the window are a *sampled estimate*
/// rather than bit-exact — the contract here is purely functional:
/// identical outputs and committed totals, exactly one recorded span,
/// and fast-forward restricted to outside the window.
#[test]
fn tiered_window_roi_gates_the_fast_forward() {
    let prog = fig7_program(&MicroParams {
        scale: 8,
        secrets: 0b01,
        ..MicroParams::new(WorkloadKind::Fibonacci, 2, 2)
    });
    for which in BackendRun::ALL {
        let (backend, config) = which.pair();
        let cw = compile(&prog, backend).expect("compiles");
        let window = Roi::Window { skip: 40, insts: 120 };
        let full = run_with(&cw, config.with_roi(window), Stepping::Skip);
        let tiered = run_with(&cw, config.with_roi(window), Stepping::Tiered);
        assert_eq!(full.1, tiered.1, "{which:?}: outputs diverge");
        assert_eq!(full.0.committed, tiered.0.committed, "{which:?}: committed diverge");
        assert_eq!(tiered.3.len(), 1, "{which:?}: expected exactly one window span");
        // The window spans 120 instructions the fast-forward may not
        // touch; everything before/after it is eligible. Secure-region
        // drains can still force detailed execution outside the window,
        // so the bound is an inequality.
        assert!(
            tiered.0.ff_committed <= tiered.0.committed - 120,
            "{which:?}: fast-forward ate into the measurement window"
        );
        assert!(tiered.0.ff_committed > 0, "{which:?}: nothing fast-forwarded");
    }
}
