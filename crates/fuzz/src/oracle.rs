//! The differential oracle: one WIR program, every execution engine,
//! every observable compared.
//!
//! For a program `P` (materialized with secret `s0`) the oracle runs:
//!
//! | engine | machine | compared against the WIR interpreter |
//! |---|---|---|
//! | `baseline` backend | legacy interp, baseline pipeline | outputs, arrays, committed count |
//! | `sempe` backend | legacy interp, SeMPE-functional interp, SeMPE pipeline, **legacy pipeline** (backward compat) | outputs, arrays, committed count |
//! | `cte` backend | legacy interp, baseline pipeline | outputs, arrays, committed count |
//!
//! and, for constant-time-profile cases, re-materializes `P` with the
//! paired secret `s1` and checks the **leak invariant** on the protected
//! backends: committed instruction counts, cycle counts, and full
//! observation traces (under [`Strictness::Full`]) must be identical
//! across the pair.
//!
//! Every (backend × machine) pair additionally runs the **fork
//! differential**: the program is checkpointed at the post-load quiesce
//! point, run, restored, and run again — the restored run must be
//! bit-for-bit identical (cycles, committed count, outputs,
//! `Strictness::Full` trace) to cold execution, which is the invariant
//! the service's fork server rests on.
//!
//! Every (backend × machine) pair also runs the **cycle-skip
//! differential**: the same binary under forced classic 1-cycle
//! stepping versus the default next-event fast-forward. Skipping is
//! supposed to be semantically invisible, so cycles, committed counts,
//! outputs, and `Strictness::Full` traces must agree exactly; every
//! generated program proves it.
//!
//! Finally, every (backend × machine) pair runs the **tiered
//! differential**: the same binary under tiered stepping (functional
//! fast-forward between the regions of interest, detailed pipeline
//! inside them). Fast-forwarding must be architecturally invisible —
//! committed counts, outputs, final array state, and the detailed-span
//! count must match the full-detailed run exactly, and ROI cycle
//! counts must stay within the warmup exactness budget documented in
//! `sempe_sim::tier`.

use core::fmt;

use sempe_compile::{compile, run_wir, Backend, CompiledWorkload, WirProgram, WirResult};
use sempe_core::{first_divergence, Strictness};
use sempe_isa::interp::{Interp, InterpMode};
use sempe_sim::{SimConfig, Simulator, Stepping};

use crate::gen::{FuzzCase, Profile};

/// Interpreter fuel (instructions) per run.
pub const INTERP_FUEL: u64 = 20_000_000;
/// Simulator fuel (cycles) per run.
pub const SIM_FUEL: u64 = 50_000_000;

/// Which backends the differential run exercises (the WIR interpreter
/// always runs — it is the oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSet {
    /// Exercise the baseline backend.
    pub baseline: bool,
    /// Exercise the SeMPE backend.
    pub sempe: bool,
    /// Exercise the constant-time-expression backend.
    pub cte: bool,
}

impl EngineSet {
    /// Everything.
    #[must_use]
    pub const fn all() -> Self {
        EngineSet { baseline: true, sempe: true, cte: true }
    }

    /// Parse `--backend-pair` syntax: `all` or a comma-separated subset
    /// of `baseline,sempe,cte` (the reference interpreter is always the
    /// other half of every pair).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        if s == "all" {
            return Some(Self::all());
        }
        let mut set = EngineSet { baseline: false, sempe: false, cte: false };
        for part in s.split(',') {
            match part.trim() {
                "baseline" => set.baseline = true,
                "sempe" => set.sempe = true,
                "cte" => set.cte = true,
                "wir" | "" => {}
                _ => return None,
            }
        }
        if set.baseline || set.sempe || set.cte {
            Some(set)
        } else {
            None
        }
    }
}

/// What kind of disagreement was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The generated program failed on the reference interpreter —
    /// a generator bug, not a backend bug.
    Invalid,
    /// A backend refused to compile a valid program.
    Compile,
    /// An engine faulted or failed to halt within fuel.
    Run,
    /// Final scalar state differs from the oracle.
    Scalars,
    /// Final array contents differ from the oracle.
    Arrays,
    /// Committed-instruction count differs between an interpreter and
    /// the cycle-level pipeline running the same binary.
    Committed,
    /// Leak: committed instructions depend on the secret.
    LeakCommitted,
    /// Leak: cycle count depends on the secret.
    LeakCycles,
    /// Leak: the observation trace depends on the secret.
    LeakTrace,
    /// The `to_source`/`parse_wir` round trip changed the program.
    Source,
    /// The `collapse_nested_ifs` rewrite changed observable behavior.
    Opt,
    /// A run restored from a checkpoint diverged from cold execution
    /// (cycles, committed count, outputs, or observation trace).
    Fork,
    /// A cycle-skipping run diverged from classic 1-cycle stepping
    /// (cycles, committed count, outputs, or observation trace).
    Skip,
    /// A tiered (fast-forward + detailed-ROI) run diverged from full
    /// detailed execution: committed count, outputs, final arrays, or
    /// ROI cycles outside the documented warmup budget.
    Tiered,
    /// The service stack (wire protocol, job queue, worker pool, result
    /// cache — under fault injection) disagreed with a direct simulator
    /// run, or failed to converge to a response at all.
    Service,
}

impl DivergenceKind {
    /// Stable name for reports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            DivergenceKind::Invalid => "invalid",
            DivergenceKind::Compile => "compile",
            DivergenceKind::Run => "run",
            DivergenceKind::Scalars => "scalars",
            DivergenceKind::Arrays => "arrays",
            DivergenceKind::Committed => "committed",
            DivergenceKind::LeakCommitted => "leak-committed",
            DivergenceKind::LeakCycles => "leak-cycles",
            DivergenceKind::LeakTrace => "leak-trace",
            DivergenceKind::Source => "source",
            DivergenceKind::Opt => "opt",
            DivergenceKind::Fork => "fork",
            DivergenceKind::Skip => "skip",
            DivergenceKind::Tiered => "tiered",
            DivergenceKind::Service => "service",
        }
    }
}

/// A confirmed disagreement between engines.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// What class of disagreement.
    pub kind: DivergenceKind,
    /// Which engine disagreed (e.g. `sempe/sim-paper`).
    pub engine: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind.name(), self.engine, self.detail)
    }
}

/// Work accounting for one checked case.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckStats {
    /// Engine executions performed.
    pub engine_runs: u64,
    /// Leak pairs checked.
    pub leak_pairs: u64,
}

/// A reusable simulator arena (rebuild instead of reallocate). The
/// second slot hosts the fork differential's machine.
#[derive(Debug, Default)]
pub struct SimArena {
    sim: Option<Simulator>,
    fork: Option<Simulator>,
}

impl SimArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        SimArena::default()
    }

    fn run(
        &mut self,
        cw: &CompiledWorkload,
        config: SimConfig,
        engine: &str,
    ) -> Result<&Simulator, Divergence> {
        let sim = Simulator::rebuild_or_new(&mut self.sim, cw.program(), config).map_err(|e| {
            Divergence {
                kind: DivergenceKind::Run,
                engine: engine.to_string(),
                detail: format!("simulator build failed: {e}"),
            }
        })?;
        let res = sim.run(SIM_FUEL).map_err(|e| Divergence {
            kind: DivergenceKind::Run,
            engine: engine.to_string(),
            detail: format!("simulator fault: {e}"),
        })?;
        if !res.halted {
            return Err(Divergence {
                kind: DivergenceKind::Run,
                engine: engine.to_string(),
                detail: format!("did not halt within {SIM_FUEL} cycles"),
            });
        }
        Ok(self.sim.as_ref().unwrap_or_else(|| unreachable!("just ran")))
    }

    /// The fork differential: checkpoint a freshly built machine at the
    /// post-load quiesce point, run it (dirtying registers, memory,
    /// caches, predictor), restore, and run again. Both runs — and in
    /// particular the *restored* one — must reproduce the cold run's
    /// cycle count and committed count bit for bit, agree with each
    /// other on outputs, and leave `Strictness::Full`-identical
    /// observation traces. Every generated program goes through this, so
    /// a checkpoint field that silently leaks state across a restore
    /// shows up as a fuzz divergence, not as a wrong paper number.
    fn fork_check(
        &mut self,
        cw: &CompiledWorkload,
        config: SimConfig,
        engine: &str,
        want_cycles: u64,
        want_committed: u64,
    ) -> Result<(), Divergence> {
        let fail = |detail: String| Divergence {
            kind: DivergenceKind::Fork,
            engine: engine.to_string(),
            detail,
        };
        // Trace recording is observation-only; enabling it must not (and
        // does not) perturb timing, which this check also pins.
        let traced = config.with_trace();
        let sim = Simulator::rebuild_or_new(&mut self.fork, cw.program(), traced)
            .map_err(|e| fail(format!("fork machine build failed: {e}")))?;
        let cp =
            sim.checkpoint().map_err(|e| fail(format!("post-load checkpoint refused: {e}")))?;
        let first = sim.run(SIM_FUEL).map_err(|e| fail(format!("first run fault: {e}")))?;
        let first_outputs = cw.read_outputs(sim.mem());
        let first_trace = sim.trace().clone();
        sim.restore_from(&cp);
        let restored = sim.run(SIM_FUEL).map_err(|e| fail(format!("restored run fault: {e}")))?;
        for (which, res) in [("first", &first), ("restored", &restored)] {
            if res.stats.cycles != want_cycles {
                return Err(fail(format!(
                    "{which} forked run took {} cycles, cold run {want_cycles}",
                    res.stats.cycles
                )));
            }
            if res.stats.committed != want_committed {
                return Err(fail(format!(
                    "{which} forked run committed {}, cold run {want_committed}",
                    res.stats.committed
                )));
            }
        }
        let restored_outputs = cw.read_outputs(sim.mem());
        if restored_outputs != first_outputs {
            return Err(fail(format!(
                "restored outputs {restored_outputs:?} != pre-restore outputs {first_outputs:?}"
            )));
        }
        if let Some(d) = first_divergence(&first_trace, sim.trace(), Strictness::Full) {
            return Err(fail(format!("restored trace diverges: {d:?}")));
        }
        Ok(())
    }

    /// The cycle-skip differential: run the binary under forced classic
    /// 1-cycle stepping and under the default next-event fast-forward;
    /// both must reproduce the cold run's cycle and committed counts bit
    /// for bit, agree on outputs, and leave `Strictness::Full`-identical
    /// observation traces. Every generated program goes through this, so
    /// a missed wake source (a timer the skip jumps over) shows up as a
    /// fuzz divergence, not as a wrong paper number.
    fn skip_check(
        &mut self,
        cw: &CompiledWorkload,
        config: SimConfig,
        engine: &str,
        want_cycles: u64,
        want_committed: u64,
    ) -> Result<(), Divergence> {
        let fail = |detail: String| Divergence {
            kind: DivergenceKind::Skip,
            engine: engine.to_string(),
            detail,
        };
        let traced = config.with_trace();
        let sim = Simulator::rebuild_or_new(&mut self.fork, cw.program(), traced)
            .map_err(|e| fail(format!("skip machine build failed: {e}")))?;
        let skip_res = sim.run(SIM_FUEL).map_err(|e| fail(format!("skipping run fault: {e}")))?;
        let skip_outputs = cw.read_outputs(sim.mem());
        let skip_trace = sim.trace().clone();
        let sim =
            Simulator::rebuild_or_new(&mut self.fork, cw.program(), traced.with_classic_stepping())
                .map_err(|e| fail(format!("classic machine build failed: {e}")))?;
        let classic_res = sim.run(SIM_FUEL).map_err(|e| fail(format!("classic run fault: {e}")))?;
        for (which, res) in [("skipping", &skip_res), ("classic", &classic_res)] {
            if res.stats.cycles != want_cycles {
                return Err(fail(format!(
                    "{which} run took {} cycles, cold run {want_cycles}",
                    res.stats.cycles
                )));
            }
            if res.stats.committed != want_committed {
                return Err(fail(format!(
                    "{which} run committed {}, cold run {want_committed}",
                    res.stats.committed
                )));
            }
        }
        // The whole statistics block, not just cycles/committed: a
        // bulk-accounting slip in the skipped-span arithmetic (e.g.
        // drain_stall_cycles) would leave every other observable intact.
        if skip_res.stats != classic_res.stats {
            return Err(fail(format!(
                "statistics diverge between stepping modes: skipping {:?} != classic {:?}",
                skip_res.stats, classic_res.stats
            )));
        }
        let classic_outputs = cw.read_outputs(sim.mem());
        if classic_outputs != skip_outputs {
            return Err(fail(format!(
                "classic outputs {classic_outputs:?} != skipping outputs {skip_outputs:?}"
            )));
        }
        if let Some(d) = first_divergence(&skip_trace, sim.trace(), Strictness::Full) {
            return Err(fail(format!("skip/classic traces diverge: {d:?}")));
        }
        Ok(())
    }

    /// The tiered differential: run the binary under tiered stepping
    /// (functional fast-forward outside the regions of interest,
    /// detailed pipeline inside) and compare against the cold full-
    /// detailed run. Fast-forwarding must be architecturally invisible —
    /// committed count, outputs, final (non-scratch) array state, and
    /// the number of detailed ROI spans must match exactly. ROI cycle
    /// counts are usually bit-identical too, but warmup is approximate
    /// by design (see `sempe_sim::tier`'s exactness budget: a full run's
    /// front end can run ahead into region code during pre-region
    /// stalls), so they are held to the documented budget instead:
    /// within ±(50% + 64 cycles) of the full-detailed count. A real
    /// accounting bug — FF gaps billed to the ROI, spans never closed —
    /// blows far past that band; warmup noise does not.
    #[allow(clippy::too_many_arguments)]
    fn tiered_check(
        &mut self,
        prog: &WirProgram,
        cw: &CompiledWorkload,
        config: SimConfig,
        engine: &str,
        want: &WirResult,
        want_committed: u64,
        want_roi: u64,
        want_spans: usize,
    ) -> Result<(), Divergence> {
        let fail = |detail: String| Divergence {
            kind: DivergenceKind::Tiered,
            engine: engine.to_string(),
            detail,
        };
        let tiered = config.with_stepping(Stepping::Tiered);
        let sim = Simulator::rebuild_or_new(&mut self.fork, cw.program(), tiered)
            .map_err(|e| fail(format!("tiered machine build failed: {e}")))?;
        let res = sim.run(SIM_FUEL).map_err(|e| fail(format!("tiered run fault: {e}")))?;
        if !res.halted {
            return Err(fail(format!("did not halt within {SIM_FUEL} cycles of fuel")));
        }
        if res.stats.committed != want_committed {
            return Err(fail(format!(
                "tiered run committed {} instructions, full detailed run {want_committed}",
                res.stats.committed
            )));
        }
        compare_state(prog, cw, sim.mem(), want, engine)
            .map_err(|d| fail(format!("architectural state diverges: {d}")))?;
        if res.stats.ff_committed > res.stats.committed {
            return Err(fail(format!(
                "fast-forward accounting overflows the commit count: {} of {}",
                res.stats.ff_committed, res.stats.committed
            )));
        }
        if sim.roi_spans().len() != want_spans {
            return Err(fail(format!(
                "tiered run opened {} detailed spans, full detailed run {want_spans}",
                sim.roi_spans().len()
            )));
        }
        let roi = res.stats.roi_cycles;
        let budget = want_roi / 2 + 64;
        if roi.abs_diff(want_roi) > budget {
            return Err(fail(format!(
                "ROI cycle count {roi} outside the warmup budget: full detailed run \
                 {want_roi} ± {budget}"
            )));
        }
        Ok(())
    }
}

fn compile_backend(prog: &WirProgram, backend: Backend) -> Result<CompiledWorkload, Divergence> {
    compile(prog, backend).map_err(|e| Divergence {
        kind: DivergenceKind::Compile,
        engine: backend.to_string(),
        detail: e.to_string(),
    })
}

/// Compare every observable architectural fact against the oracle.
fn compare_state(
    prog: &WirProgram,
    cw: &CompiledWorkload,
    mem: &sempe_isa::mem::Memory,
    want: &WirResult,
    engine: &str,
) -> Result<(), Divergence> {
    let outputs = cw.read_outputs(mem);
    if outputs != want.outputs {
        return Err(Divergence {
            kind: DivergenceKind::Scalars,
            engine: engine.to_string(),
            detail: format!("outputs {outputs:?} != oracle {:?}", want.outputs),
        });
    }
    let arrays = cw.read_arrays(mem);
    for (i, decl) in prog.arrays().iter().enumerate() {
        // Declared-scratch arrays are dead after their block (the Sempe
        // backend deliberately lets wrong-path writes land in them), so
        // their final contents are not an architectural observable.
        if decl.scratch {
            continue;
        }
        if arrays[i] != want.arrays[i] {
            return Err(Divergence {
                kind: DivergenceKind::Arrays,
                engine: engine.to_string(),
                detail: format!(
                    "array `{}` {:?} != oracle {:?}",
                    decl.name, arrays[i], want.arrays[i]
                ),
            });
        }
    }
    Ok(())
}

fn run_interp(
    cw: &CompiledWorkload,
    mode: InterpMode,
    engine: &str,
) -> Result<(Interp, u64), Divergence> {
    let mut i = Interp::new(cw.program(), mode).map_err(|e| Divergence {
        kind: DivergenceKind::Run,
        engine: engine.to_string(),
        detail: format!("interpreter build failed: {e}"),
    })?;
    let summary = i.run(INTERP_FUEL).map_err(|e| Divergence {
        kind: DivergenceKind::Run,
        engine: engine.to_string(),
        detail: format!("interpreter fault: {e}"),
    })?;
    if !summary.halted {
        return Err(Divergence {
            kind: DivergenceKind::Run,
            engine: engine.to_string(),
            detail: format!("did not halt within {INTERP_FUEL} instructions"),
        });
    }
    Ok((i, summary.committed))
}

struct BackendPlan {
    backend: Backend,
    /// (interp mode, pipeline config) pairs whose committed counts must
    /// agree — the pipeline must commit exactly the instructions the
    /// matching interpreter executes.
    machines: Vec<(InterpMode, SimConfig)>,
}

/// Differentially check one materialized program (plus, when `p1` is
/// given, the leak invariant across the paired materialization).
/// `secrets` names the secret-declared variables (for the source
/// round-trip check).
///
/// # Errors
///
/// The first [`Divergence`] found.
pub fn check_program(
    p0: &WirProgram,
    secrets: &[sempe_compile::VarId],
    p1: Option<&WirProgram>,
    engines: &EngineSet,
    arena: &mut SimArena,
) -> Result<CheckStats, Divergence> {
    let mut stats = CheckStats::default();
    let want = run_wir(p0, &std::collections::BTreeMap::new()).map_err(|e| Divergence {
        kind: DivergenceKind::Invalid,
        engine: "wir".to_string(),
        detail: e.to_string(),
    })?;

    // The concrete syntax is part of the attack surface: printing and
    // re-parsing must reproduce the program exactly (the corpus format
    // and the service's source-based protocol both depend on it).
    let text = sempe_compile::to_source(p0, secrets);
    match sempe_compile::parse_wir(&text) {
        Err(e) => {
            return Err(Divergence {
                kind: DivergenceKind::Source,
                engine: "wir/to-source".to_string(),
                detail: format!("printed source does not parse: {e}"),
            })
        }
        Ok(reparsed) => {
            if reparsed.program != *p0 {
                return Err(Divergence {
                    kind: DivergenceKind::Source,
                    engine: "wir/to-source".to_string(),
                    detail: "printed source parses to a different program".to_string(),
                });
            }
            // Secrets live beside the program, not in it: a printer that
            // dropped a `secret` keyword would still reparse to an equal
            // program while silently weakening every pinned invariant.
            if reparsed.secrets != secrets {
                return Err(Divergence {
                    kind: DivergenceKind::Source,
                    engine: "wir/to-source".to_string(),
                    detail: format!(
                        "printed source declares secrets {:?}, original {:?}",
                        reparsed.secrets, secrets
                    ),
                });
            }
        }
    }

    // The nesting-collapse rewrite (§IV-E) must preserve semantics.
    let (collapsed, n_collapsed) = sempe_compile::collapse_nested_ifs(p0);
    if n_collapsed > 0 {
        let got =
            run_wir(&collapsed, &std::collections::BTreeMap::new()).map_err(|e| Divergence {
                kind: DivergenceKind::Opt,
                engine: "opt/collapse".to_string(),
                detail: format!("collapsed program faults: {e}"),
            })?;
        if got.outputs != want.outputs {
            return Err(Divergence {
                kind: DivergenceKind::Opt,
                engine: "opt/collapse".to_string(),
                detail: format!(
                    "collapsed outputs {:?} != original {:?}",
                    got.outputs, want.outputs
                ),
            });
        }
        if engines.sempe {
            let cw = compile_backend(&collapsed, Backend::Sempe)?;
            let (interp, _) = run_interp(&cw, InterpMode::SempeFunctional, "opt/sempe")?;
            stats.engine_runs += 1;
            let outputs = cw.read_outputs(interp.mem());
            if outputs != want.outputs {
                return Err(Divergence {
                    kind: DivergenceKind::Opt,
                    engine: "opt/sempe".to_string(),
                    detail: format!(
                        "collapsed sempe outputs {outputs:?} != oracle {:?}",
                        want.outputs
                    ),
                });
            }
        }
    }

    let mut plans = Vec::new();
    if engines.baseline {
        plans.push(BackendPlan {
            backend: Backend::Baseline,
            machines: vec![(InterpMode::Legacy, SimConfig::baseline())],
        });
    }
    if engines.sempe {
        plans.push(BackendPlan {
            backend: Backend::Sempe,
            machines: vec![
                // The same binary must be architecturally correct on the
                // SeMPE pipeline *and* on a legacy pipeline (the paper's
                // backward-compatibility claim).
                (InterpMode::SempeFunctional, SimConfig::paper()),
                (InterpMode::Legacy, SimConfig::baseline()),
            ],
        });
    }
    if engines.cte {
        plans.push(BackendPlan {
            backend: Backend::Cte,
            machines: vec![(InterpMode::Legacy, SimConfig::baseline())],
        });
    }

    for plan in &plans {
        let cw = compile_backend(p0, plan.backend)?;
        for (mode, config) in &plan.machines {
            let interp_name = format!("{}/interp-{mode:?}", plan.backend);
            let (interp, committed) = run_interp(&cw, *mode, &interp_name)?;
            stats.engine_runs += 1;
            compare_state(p0, &cw, interp.mem(), &want, &interp_name)?;

            let sim_name = format!("{}/sim-{}", plan.backend, config.mode.name());
            let sim = arena.run(&cw, *config, &sim_name)?;
            stats.engine_runs += 1;
            let sim_committed = sim.stats().committed;
            let sim_cycles = sim.stats().cycles;
            let sim_roi = sim.stats().roi_cycles;
            let sim_spans = sim.roi_spans().len();
            let sim_mem_ok = compare_state(p0, &cw, sim.mem(), &want, &sim_name);
            sim_mem_ok?;
            if sim_committed != committed {
                return Err(Divergence {
                    kind: DivergenceKind::Committed,
                    engine: sim_name,
                    detail: format!(
                        "pipeline committed {sim_committed} instructions, \
                         interpreter executed {committed}"
                    ),
                });
            }
            arena.fork_check(&cw, *config, &sim_name, sim_cycles, sim_committed)?;
            stats.engine_runs += 2;
            arena.skip_check(&cw, *config, &sim_name, sim_cycles, sim_committed)?;
            stats.engine_runs += 2;
            arena.tiered_check(
                p0,
                &cw,
                *config,
                &sim_name,
                &want,
                sim_committed,
                sim_roi,
                sim_spans,
            )?;
            stats.engine_runs += 1;
        }
    }

    if let Some(p1) = p1 {
        stats.leak_pairs += 1;
        if engines.sempe {
            check_leak_pair(
                p0,
                p1,
                Backend::Sempe,
                InterpMode::SempeFunctional,
                SimConfig::paper().with_trace(),
                arena,
            )?;
            stats.engine_runs += 4;
        }
        if engines.cte {
            check_leak_pair(
                p0,
                p1,
                Backend::Cte,
                InterpMode::Legacy,
                SimConfig::baseline().with_trace(),
                arena,
            )?;
            stats.engine_runs += 4;
        }
    }
    Ok(stats)
}

/// The leak invariant for one protected backend: committed counts,
/// cycle counts, and observation traces must be identical across the
/// two secret materializations.
fn check_leak_pair(
    p0: &WirProgram,
    p1: &WirProgram,
    backend: Backend,
    mode: InterpMode,
    config: SimConfig,
    arena: &mut SimArena,
) -> Result<(), Divergence> {
    let engine = format!("{backend}/leak");
    let cw0 = compile_backend(p0, backend)?;
    let cw1 = compile_backend(p1, backend)?;

    let (_, committed0) = run_interp(&cw0, mode, &engine)?;
    let (_, committed1) = run_interp(&cw1, mode, &engine)?;
    if committed0 != committed1 {
        return Err(Divergence {
            kind: DivergenceKind::LeakCommitted,
            engine,
            detail: format!(
                "committed instruction count depends on the secret: {committed0} vs {committed1}"
            ),
        });
    }

    let sim0 = arena.run(&cw0, config, &engine)?;
    let cycles0 = sim0.stats().cycles;
    let trace0 = sim0.trace().clone();
    let sim1 = arena.run(&cw1, config, &engine)?;
    let cycles1 = sim1.stats().cycles;
    if cycles0 != cycles1 {
        return Err(Divergence {
            kind: DivergenceKind::LeakCycles,
            engine,
            detail: format!("cycle count depends on the secret: {cycles0} vs {cycles1}"),
        });
    }
    if let Some(d) = first_divergence(&trace0, sim1.trace(), Strictness::Full) {
        return Err(Divergence {
            kind: DivergenceKind::LeakTrace,
            engine,
            detail: format!("observation traces diverge: {d:?}"),
        });
    }
    Ok(())
}

/// Check a generated case end to end.
///
/// # Errors
///
/// The first [`Divergence`] found.
pub fn check_case(
    case: &FuzzCase,
    engines: &EngineSet,
    arena: &mut SimArena,
) -> Result<CheckStats, Divergence> {
    let (p0, key) = case.wir(case.pair.0);
    let pair =
        if case.profile == Profile::ConstantTime { Some(case.wir(case.pair.1).0) } else { None };
    check_program(&p0, &[key], pair.as_ref(), engines, arena)
}
