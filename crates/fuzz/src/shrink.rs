//! Greedy divergence-preserving minimizer.
//!
//! Given a case that provokes a [`Divergence`], repeatedly try
//! single-step reductions — delete a statement, inline a conditional
//! arm, unroll a loop body once, collapse a subexpression, zero an
//! initializer — and keep any reduction that still provokes a
//! divergence of the same kind. The result is the small reproducer that
//! gets checked into `corpus/`.

use sempe_compile::wir::{Expr, Stmt};

use crate::gen::FuzzCase;
use crate::oracle::{check_case, DivergenceKind, EngineSet, SimArena};

/// Cap on oracle evaluations during one shrink (each evaluation is a
/// full differential run of a — shrinking — program).
pub const MAX_SHRINK_EVALS: usize = 400;

fn expr_reductions(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    match e {
        Expr::Const(c) => {
            if *c > 1 {
                out.push(Expr::Const(0));
                out.push(Expr::Const(1));
                out.push(Expr::Const(*c >> 1));
            } else if *c == 1 {
                out.push(Expr::Const(0));
            }
        }
        Expr::Var(_) => {
            out.push(Expr::Const(0));
            out.push(Expr::Const(1));
        }
        Expr::Bin(op, a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
            out.push(Expr::Const(0));
            for ra in expr_reductions(a) {
                out.push(Expr::Bin(*op, Box::new(ra), b.clone()));
            }
            for rb in expr_reductions(b) {
                out.push(Expr::Bin(*op, a.clone(), Box::new(rb)));
            }
        }
        Expr::Load(arr, idx) => {
            out.push((**idx).clone());
            out.push(Expr::Const(0));
            for ri in expr_reductions(idx) {
                out.push(Expr::Load(*arr, Box::new(ri)));
            }
        }
    }
    out
}

/// All one-step reductions of a single statement (keeping its kind).
fn stmt_reductions(s: &Stmt) -> Vec<Stmt> {
    let mut out = Vec::new();
    match s {
        Stmt::Assign(v, e) => {
            for re in expr_reductions(e) {
                out.push(Stmt::Assign(*v, re));
            }
        }
        Stmt::Store(a, idx, val) => {
            for ri in expr_reductions(idx) {
                out.push(Stmt::Store(*a, ri, val.clone()));
            }
            for rv in expr_reductions(val) {
                out.push(Stmt::Store(*a, idx.clone(), rv));
            }
        }
        Stmt::If { cond, secret, then_, else_ } => {
            for rc in expr_reductions(cond) {
                out.push(Stmt::If {
                    cond: rc,
                    secret: *secret,
                    then_: then_.clone(),
                    else_: else_.clone(),
                });
            }
            for rt in body_reductions(then_) {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    secret: *secret,
                    then_: rt,
                    else_: else_.clone(),
                });
            }
            for re in body_reductions(else_) {
                out.push(Stmt::If {
                    cond: cond.clone(),
                    secret: *secret,
                    then_: then_.clone(),
                    else_: re,
                });
            }
        }
        Stmt::While { cond, bound, body } => {
            for rc in expr_reductions(cond) {
                out.push(Stmt::While { cond: rc, bound: *bound, body: body.clone() });
            }
            for rb in body_reductions(body) {
                out.push(Stmt::While { cond: cond.clone(), bound: *bound, body: rb });
            }
        }
    }
    out
}

/// All one-step reductions of a statement list: drop a statement,
/// replace a compound statement by one of its bodies, or reduce a
/// statement in place.
fn body_reductions(stmts: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    let splice = |i: usize, replacement: Vec<Stmt>| -> Vec<Stmt> {
        let mut v = stmts.to_vec();
        v.splice(i..=i, replacement);
        v
    };
    for (i, s) in stmts.iter().enumerate() {
        out.push(splice(i, Vec::new()));
        match s {
            Stmt::If { then_, else_, .. } => {
                if !then_.is_empty() {
                    out.push(splice(i, then_.clone()));
                }
                if !else_.is_empty() {
                    out.push(splice(i, else_.clone()));
                }
            }
            Stmt::While { body, .. } if !body.is_empty() => {
                out.push(splice(i, body.clone()));
            }
            _ => {}
        }
        for rs in stmt_reductions(s) {
            out.push(splice(i, vec![rs]));
        }
    }
    out
}

fn case_reductions(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();
    for body in body_reductions(&case.body) {
        out.push(FuzzCase { body, ..case.clone() });
    }
    for (i, init) in case.var_inits.iter().enumerate() {
        if *init != 0 {
            let mut c = case.clone();
            c.var_inits[i] = 0;
            out.push(c);
        }
    }
    for (j, spec) in case.arrays.iter().enumerate() {
        if spec.init.iter().any(|w| *w != 0) {
            let mut c = case.clone();
            c.arrays[j].init = vec![0; spec.init.len()];
            out.push(c);
        }
    }
    if case.pair != (0, 1) {
        let mut c = case.clone();
        c.pair = (0, 1);
        out.push(c);
    }
    out
}

/// Minimize `case` while preserving a divergence of kind `kind`.
/// Returns the reduced case (possibly the original).
#[must_use]
pub fn shrink(
    case: &FuzzCase,
    kind: DivergenceKind,
    engines: &EngineSet,
    arena: &mut SimArena,
) -> FuzzCase {
    let mut best = case.clone();
    let mut evals = 0usize;
    'outer: loop {
        for candidate in case_reductions(&best) {
            if evals >= MAX_SHRINK_EVALS {
                break 'outer;
            }
            // A constant-time case must stay audit-clean while it
            // shrinks — otherwise the minimizer "reproduces" the leak by
            // introducing a secret-dependent access of its own (e.g.
            // collapsing a masked index to the bare key).
            if candidate.profile == crate::gen::Profile::ConstantTime
                && !crate::gen::passes_ct_audit(&candidate)
            {
                continue;
            }
            evals += 1;
            if let Err(d) = check_case(&candidate, engines, arena) {
                if d.kind == kind {
                    best = candidate;
                    continue 'outer;
                }
            }
        }
        break;
    }
    best
}
