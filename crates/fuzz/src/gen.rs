//! Seeded, deterministic WIR program generation.
//!
//! The generator produces structurally valid programs by construction —
//! array indices are masked in-bounds, loops are counter-driven and
//! respect their declared bound — so every generated program runs to
//! completion on the reference interpreter. Anything else (a compile
//! error, a fault, a wrong answer, a timing leak) is a finding.
//!
//! Two profiles:
//!
//! * [`Profile::Correctness`] — anything the language allows, including
//!   code FaCT's type system would reject (public branches on tainted
//!   conditions, secret-indexed loads). Only functional equivalence is
//!   checked.
//! * [`Profile::ConstantTime`] — the generator performs the taint
//!   discipline a constant-time compiler enforces: public control flow
//!   and memory addresses never depend on the secret. Programs in this
//!   profile additionally carry the leak invariant: the protected
//!   backends must be cycle-for-cycle identical across paired secrets.
//!   Because the incremental tracking is generation-ordered (taint can
//!   sneak backwards through a loop's next iteration or a secret
//!   region's merge), every finished case is re-audited with the real
//!   fixpoint analysis ([`sempe_compile::analyze_taint`]) and demoted to
//!   [`Profile::Correctness`] when the audit fails.
//!
//! Declared-scratch arrays exercise the Sempe backend's privatization
//! fast path: the generator emits the contract the paper's authors
//! assumed when skipping ShadowMemory for dead locals — a full
//! re-initialization before any read within the path, no access after.

use sempe_compile::wir::{ArrId, BinOp, Expr, Stmt, VarId, WirBuilder, WirProgram};
use sempe_workloads::rng::SplitMix64;

/// Which guarantees the generated program carries (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Functional equivalence only.
    Correctness,
    /// Constant-time discipline: the leak invariant must hold.
    ConstantTime,
}

impl Profile {
    /// Stable name (reports, corpus directives).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Profile::Correctness => "correctness",
            Profile::ConstantTime => "constant-time",
        }
    }

    /// Parse a stable name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "correctness" => Some(Profile::Correctness),
            "constant-time" | "ct" => Some(Profile::ConstantTime),
            _ => None,
        }
    }
}

/// Generator tunables.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Which discipline the program follows.
    pub profile: Profile,
    /// Statement budget (recursion shares it).
    pub max_stmts: usize,
    /// Maximum structural nesting depth.
    pub max_depth: usize,
}

impl GenConfig {
    /// Default shape for a profile.
    #[must_use]
    pub fn new(profile: Profile) -> Self {
        GenConfig { profile, max_stmts: 24, max_depth: 3 }
    }
}

/// A declared array in a [`FuzzCase`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Element count (a power of two, so indices mask in-bounds).
    pub len: usize,
    /// Initial contents.
    pub init: Vec<u64>,
    /// Declared path-private scratch (Sempe skips privatization).
    pub scratch: bool,
}

/// One generated test case: a program template plus the paired secret
/// inputs the leak invariant is checked across.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The seed that produced this case (0 for shrunk/corpus cases).
    pub seed: u64,
    /// Which discipline the program follows.
    pub profile: Profile,
    /// Initial values; index 0 is the secret (`key`).
    pub var_inits: Vec<u64>,
    /// Declared arrays.
    pub arrays: Vec<ArraySpec>,
    /// Program body (references variables/arrays by declaration index).
    pub body: Vec<Stmt>,
    /// The two secret values differential leak checks pair up.
    pub pair: (u64, u64),
}

impl FuzzCase {
    /// Materialize the WIR program with the secret set to `secret`.
    /// Every scalar is declared an output so the differential oracle
    /// compares the entire final scalar state, not a projection.
    #[must_use]
    pub fn wir(&self, secret: u64) -> (WirProgram, VarId) {
        let mut b = WirBuilder::new();
        let key = b.var("key", secret);
        let mut vars = vec![key];
        for (i, init) in self.var_inits.iter().enumerate().skip(1) {
            vars.push(b.var(format!("v{i}"), *init));
        }
        for (j, spec) in self.arrays.iter().enumerate() {
            if spec.scratch {
                b.scratch_array(format!("a{j}"), spec.len, spec.init.clone());
            } else {
                b.array(format!("a{j}"), spec.len, spec.init.clone());
            }
        }
        for s in &self.body {
            b.push(s.clone());
        }
        for v in &vars {
            b.output(*v);
        }
        (b.build(), key)
    }

    /// Render the case as corpus source: WIR text for the first secret,
    /// preceded by directive comments the replay harness reads.
    #[must_use]
    pub fn to_source(&self) -> String {
        let (prog, key) = self.wir(self.pair.0);
        format!(
            "// sempe-fuzz case (seed {})\n// profile: {}\n// pair: {} {}\n{}",
            self.seed,
            self.profile.name(),
            self.pair.0,
            self.pair.1,
            sempe_compile::to_source(&prog, &[key]),
        )
    }
}

/// Values worth feeding to 64-bit wrapping/masking/comparison code.
fn interesting(rng: &mut SplitMix64) -> u64 {
    const PINNED: [u64; 12] =
        [0, 1, 2, 3, 7, 8, 63, 255, 1 << 32, (1 << 53) + 1, u64::MAX - 1, u64::MAX];
    match rng.next_u64() % 4 {
        0 => PINNED[(rng.next_u64() % PINNED.len() as u64) as usize],
        1 => rng.next_u64() % 16,
        2 => rng.next_u64() % 1024,
        _ => rng.next_u64(),
    }
}

const ALL_OPS: [BinOp; 13] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
    BinOp::Ltu,
    BinOp::Lt,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Rem,
];

struct ArrInfo {
    id: ArrId,
    len: usize,
    scratch: bool,
    tainted: bool,
}

struct Gen {
    rng: SplitMix64,
    profile: Profile,
    /// VarId factory: ids are declaration ordinals, so a throwaway
    /// builder mirrors the declaration order [`FuzzCase::wir`] replays.
    ids: WirBuilder,
    vars: Vec<VarId>,
    inits: Vec<u64>,
    /// Conservative value-taint: `true` means the variable may hold
    /// different values across the paired secret inputs.
    tainted: Vec<bool>,
    arrs: Vec<ArrInfo>,
    /// Index into `arrs` of the scratch array that is currently
    /// re-initialized and therefore readable; scratch arrays are
    /// untouchable outside their block (the paper's dead-after-region
    /// contract).
    active_scratch: Option<usize>,
    /// Loop counters of enclosing loops (never reassigned by bodies —
    /// that is what keeps every loop within its declared bound).
    locked: Vec<VarId>,
    budget: usize,
}

impl Gen {
    fn untainted_vars(&self) -> Vec<VarId> {
        self.vars.iter().zip(&self.tainted).filter(|(_, t)| !**t).map(|(v, _)| *v).collect()
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[(self.rng.next_u64() % xs.len() as u64) as usize]
    }

    /// Arrays currently legal to touch: all normal arrays, plus the
    /// active scratch array (if any).
    fn accessible_arrays(&self) -> Vec<usize> {
        self.arrs
            .iter()
            .enumerate()
            .filter(|(i, a)| !a.scratch || self.active_scratch == Some(*i))
            .map(|(i, _)| i)
            .collect()
    }

    /// Generate an expression of AST depth at most `depth`, returning it
    /// with its taint. When `allow_taint` is false the result is
    /// guaranteed untainted (its value is identical across the secret
    /// pair).
    fn expr(&mut self, depth: usize, allow_taint: bool) -> (Expr, bool) {
        let choice = self.rng.next_u64() % 100;
        if depth == 0 || choice < 35 {
            return self.leaf(allow_taint);
        }
        let accessible = self.accessible_arrays();
        if choice < 85 || accessible.is_empty() || depth < 2 {
            let op = self.pick(&ALL_OPS);
            let (a, ta) = self.expr(depth - 1, allow_taint);
            let (b, tb) = self.expr(depth - 1, allow_taint);
            return (Expr::bin(op, a, b), ta || tb);
        }
        // Array load. The index is masked in-bounds; under the
        // constant-time discipline it must additionally be untainted
        // (data-dependent addresses are a cache side channel SeMPE does
        // not claim to close).
        let ai = self.pick(&accessible);
        let loaded_taint = self.arrs[ai].tainted;
        if !allow_taint && loaded_taint {
            return self.leaf(false);
        }
        let idx_taint_ok = allow_taint && self.profile == Profile::Correctness;
        let (idx, ti) = self.expr(depth - 2, idx_taint_ok);
        let masked = Expr::bin(BinOp::And, idx, Expr::Const(self.arrs[ai].len as u64 - 1));
        (Expr::Load(self.arrs[ai].id, Box::new(masked)), loaded_taint || ti)
    }

    fn leaf(&mut self, allow_taint: bool) -> (Expr, bool) {
        let use_var = self.rng.ratio(1, 2);
        if use_var {
            if allow_taint {
                let v = self.pick(&self.vars.clone());
                return (Expr::Var(v), self.tainted[v.index()]);
            }
            let clean = self.untainted_vars();
            if !clean.is_empty() {
                return (Expr::Var(self.pick(&clean)), false);
            }
        }
        (Expr::Const(interesting(&mut self.rng)), false)
    }

    /// A random per-site expression depth, biased small but reaching the
    /// lowering's register-stack limit now and then: `expr(d)` yields
    /// AST depth ≤ d+1, so d=7 lands exactly on `MAX_EXPR_DEPTH` at
    /// level-0 sites (assignment/store values), probing the boundary.
    fn expr_depth(&mut self) -> usize {
        if self.rng.ratio(1, 16) {
            return 7;
        }
        1 + (self.rng.next_u64() % 100 / 40) as usize * 2 + (self.rng.next_u64() % 2) as usize
    }

    /// A condition biased toward actually inspecting the secret.
    fn secret_cond(&mut self) -> Expr {
        let key = self.vars[0];
        let shift = self.rng.next_u64() % 8;
        match self.rng.next_u64() % 3 {
            0 => Expr::bin(
                BinOp::And,
                Expr::bin(BinOp::Shr, Expr::Var(key), Expr::Const(shift)),
                Expr::Const(1),
            ),
            1 => {
                let (rhs, _) = self.expr(1, true);
                Expr::bin(BinOp::Ltu, Expr::Var(key), rhs)
            }
            _ => self.expr(2, true).0,
        }
    }

    fn stmts(&mut self, depth: usize, secret_ctx: bool, max_n: usize) -> Vec<Stmt> {
        let n = 1 + (self.rng.next_u64() % max_n.max(1) as u64) as usize;
        let mut out = Vec::new();
        for _ in 0..n {
            if self.budget == 0 {
                break;
            }
            self.budget -= 1;
            self.stmt(depth, secret_ctx, &mut out);
        }
        out
    }

    fn gen_assign(&mut self, secret_ctx: bool, out: &mut Vec<Stmt>) {
        let targets: Vec<VarId> =
            self.vars.iter().filter(|v| !self.locked.contains(v)).copied().collect();
        if targets.is_empty() {
            return;
        }
        let v = self.pick(&targets);
        let d = self.expr_depth();
        let (e, te) = self.expr(d, true);
        self.tainted[v.index()] = te || secret_ctx;
        out.push(Stmt::Assign(v, e));
    }

    fn gen_store(&mut self, secret_ctx: bool, out: &mut Vec<Stmt>) {
        let accessible = self.accessible_arrays();
        if accessible.is_empty() {
            self.gen_assign(secret_ctx, out);
            return;
        }
        let ai = self.pick(&accessible);
        let idx_taint_ok = self.profile == Profile::Correctness;
        let (idx, ti) = self.expr(2, idx_taint_ok);
        let masked = Expr::bin(BinOp::And, idx, Expr::Const(self.arrs[ai].len as u64 - 1));
        let d = self.expr_depth();
        let (val, tv) = self.expr(d, true);
        self.arrs[ai].tainted |= ti || tv || secret_ctx;
        out.push(Stmt::Store(self.arrs[ai].id, masked, val));
    }

    /// The declared-scratch usage pattern: fully re-initialize the
    /// array, then compute with it, then leave it for dead. Only inside
    /// this block is the scratch array readable.
    fn gen_scratch_block(&mut self, secret_ctx: bool, out: &mut Vec<Stmt>) {
        let Some(si) = self.arrs.iter().position(|a| a.scratch) else {
            self.gen_assign(secret_ctx, out);
            return;
        };
        // Full re-initialization first (scratch loads still disabled:
        // the contract forbids reading what the other path left behind).
        for j in 0..self.arrs[si].len {
            let d = self.expr_depth();
            let (val, tv) = self.expr(d, true);
            self.arrs[si].tainted |= tv || secret_ctx;
            out.push(Stmt::Store(self.arrs[si].id, Expr::Const(j as u64), val));
        }
        // Then a couple of statements that may read it.
        self.active_scratch = Some(si);
        self.gen_store(secret_ctx, out);
        self.gen_assign(secret_ctx, out);
        self.active_scratch = None;
    }

    fn stmt(&mut self, depth: usize, secret_ctx: bool, out: &mut Vec<Stmt>) {
        // At depth 0 only the non-nesting statement kinds are in play.
        let roll = self.rng.next_u64() % if depth == 0 { 65 } else { 100 };
        match roll {
            // Assignment.
            _ if roll < 40 => self.gen_assign(secret_ctx, out),
            // Array store.
            _ if roll < 58 => self.gen_store(secret_ctx, out),
            // Scratch-array block.
            _ if roll < 65 => self.gen_scratch_block(secret_ctx, out),
            // Conditional.
            _ if roll < 88 => {
                let want_secret = self.rng.ratio(1, 2);
                let (cond, tainted_cond) = if want_secret {
                    (self.secret_cond(), true)
                } else {
                    let allow = self.profile == Profile::Correctness;
                    self.expr(2, allow)
                };
                // Under the constant-time discipline a tainted condition
                // forces a secret `if`; the correctness profile may also
                // emit the illegal public-branch-on-secret shape.
                let secret = if self.profile == Profile::ConstantTime {
                    tainted_cond || self.rng.ratio(1, 4)
                } else {
                    self.rng.ratio(1, 2)
                };
                let then_ = self.stmts(depth - 1, secret_ctx || secret, 3);
                let else_ = if self.rng.ratio(1, 3) {
                    Vec::new()
                } else {
                    self.stmts(depth - 1, secret_ctx || secret, 3)
                };
                out.push(Stmt::If { cond, secret, then_, else_ });
            }
            // Counter-driven loop.
            _ => {
                let trips = 1 + (self.rng.next_u64() % 3) as u32;
                let c = self.ids.var(format!("v{}", self.inits.len()), 0);
                self.vars.push(c);
                self.inits.push(0);
                self.tainted.push(secret_ctx);
                let mut cond = Expr::bin(BinOp::Ltu, Expr::Var(c), Expr::Const(u64::from(trips)));
                let mut cond_tainted = secret_ctx;
                if self.rng.ratio(1, 4) {
                    // Optional extra exit conjunct (0/1-valued); it can
                    // only shorten the loop, never exceed the bound.
                    let allow = self.profile == Profile::Correctness;
                    let (a, ta) = self.expr(1, allow);
                    let (b, tb) = self.expr(1, allow);
                    cond = Expr::bin(BinOp::And, cond, Expr::bin(BinOp::Ne, a, b));
                    cond_tainted |= ta || tb;
                }
                self.locked.push(c);
                let mut body = self.stmts(depth - 1, secret_ctx, 3);
                self.locked.pop();
                body.push(Stmt::Assign(c, Expr::bin(BinOp::Add, Expr::Var(c), Expr::Const(1))));
                self.tainted[c.index()] = cond_tainted;
                out.push(Stmt::Assign(c, Expr::Const(0)));
                out.push(Stmt::While { cond, bound: trips, body });
            }
        }
    }
}

/// Generate one case from a seed.
#[must_use]
pub fn generate(seed: u64, config: &GenConfig) -> FuzzCase {
    let mut rng = SplitMix64::new(seed ^ 0x5EED_F0CC_AC1D_2025);
    let n_vars = 3 + (rng.next_u64() % 4) as usize; // key + 2..5 publics
    let mut ids = WirBuilder::new();
    let mut vars = Vec::new();
    let mut inits = Vec::new();
    for i in 0..n_vars {
        vars.push(ids.var(format!("v{i}"), 0));
        inits.push(if i == 0 { 0 } else { interesting(&mut rng) });
    }
    const LENS: [usize; 5] = [1, 2, 4, 8, 16];
    let n_arrays = (rng.next_u64() % 3) as usize; // 0..2 normal arrays
    let with_scratch = rng.ratio(1, 3);
    let mut arrs = Vec::new();
    let mut arrays = Vec::new();
    for j in 0..n_arrays + usize::from(with_scratch) {
        let scratch = j == n_arrays;
        let len = if scratch {
            [2usize, 4][(rng.next_u64() % 2) as usize]
        } else {
            LENS[(rng.next_u64() % LENS.len() as u64) as usize]
        };
        let init: Vec<u64> = (0..len).map(|_| interesting(&mut rng)).collect();
        let id = if scratch {
            ids.scratch_array(format!("a{j}"), len, init.clone())
        } else {
            ids.array(format!("a{j}"), len, init.clone())
        };
        arrs.push(ArrInfo { id, len, scratch, tainted: false });
        arrays.push(ArraySpec { len, init, scratch });
    }
    let pair = loop {
        let a = interesting(&mut rng);
        let b = interesting(&mut rng);
        if a != b {
            break (a, b);
        }
    };
    let profile = config.profile;
    let mut g = Gen {
        rng,
        profile,
        ids,
        vars,
        inits,
        tainted: std::iter::once(true).chain(std::iter::repeat(false)).take(n_vars).collect(),
        arrs,
        active_scratch: None,
        locked: Vec::new(),
        budget: config.max_stmts,
    };
    let body = g.stmts(config.max_depth, false, config.max_stmts.min(8));
    let mut case = FuzzCase { seed, profile, var_inits: g.inits, arrays, body, pair };
    // The generator's incremental taint tracking is generation-ordered;
    // taint can still sneak backwards through a loop's next iteration or
    // a secret region's merge. Audit the finished program with the real
    // fixpoint analysis and demote cases that fail — the leak invariant
    // is only claimed for programs a constant-time compiler would accept.
    if case.profile == Profile::ConstantTime && !passes_ct_audit(&case) {
        case.profile = Profile::Correctness;
    }
    case
}

/// Does the materialized program pass the strict constant-time audit
/// ([`sempe_compile::TaintReport::is_constant_time`])? This gates the
/// leak invariant: only audited-clean programs promise secret-independent
/// cycle counts and traces on the protected backends.
#[must_use]
pub fn passes_ct_audit(case: &FuzzCase) -> bool {
    let (prog, key) = case.wir(case.pair.0);
    sempe_compile::analyze_taint(&prog, &[key]).is_constant_time()
}
