//! `--service` mode: replay fuzz cases through a fault-injected
//! in-process `sempe-service` daemon and diff the wire results against
//! direct [`Simulator`] runs.
//!
//! The point is end-to-end: a case that survives the in-process oracle
//! can still be mangled by the service stack — request parsing, the job
//! queue, worker supervision, the result cache, response framing — and
//! the fault injector makes the harness walk the *recovery* paths
//! (crashed workers, truncated frames, dropped connections) while the
//! differential pins the answer bytes. Any disagreement is a
//! [`DivergenceKind::Service`] finding.
//!
//! Each case is checked per backend:
//!
//! 1. run the compiled program directly on a fresh [`Simulator`]
//!    (cycles, committed count, outputs);
//! 2. send the same source as a `run` request to the fault-injected
//!    daemon, retrying transient failures until it converges;
//! 3. the service's numbers must equal the direct run's, and a repeat
//!    request must return byte-identical bytes (the cache invariant).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sempe_compile::{compile, parse_wir, Backend};
use sempe_core::json::{self, Json};
use sempe_service::{FaultPlan, Server, ServiceConfig};
use sempe_sim::{SimConfig, Simulator};

use crate::oracle::SIM_FUEL;
use crate::oracle::{Divergence, DivergenceKind};

/// The default chaos plan for `--service` mode: every site armed at a
/// few percent, stalls kept to 1 ms so throughput stays usable.
pub const DEFAULT_FAULT_SPEC: &str = "seed=1,accept_drop=60,read_stall=60,write_stall=60,\
     write_trunc=60,panic_pre=60,panic_post=40,wedge=30,cache_fail=80,arena_corrupt=60,\
     read_stall_ms=1,write_stall_ms=1,wedge_ms=2";

/// Retry budget per request before the harness calls it a hang.
const RETRY_BUDGET: u32 = 300;

/// An in-process, fault-injected daemon plus the plumbing to diff
/// against it.
#[derive(Debug)]
pub struct ServiceOracle {
    server: Option<Server>,
    addr: SocketAddr,
}

impl ServiceOracle {
    /// Start the daemon with the given fault-plan spec (see
    /// `docs/robustness.md`; empty string means [`DEFAULT_FAULT_SPEC`]).
    ///
    /// # Errors
    ///
    /// A human-readable message when the spec is malformed or the
    /// server cannot bind.
    pub fn start(fault_spec: &str) -> Result<ServiceOracle, String> {
        let spec = if fault_spec.is_empty() { DEFAULT_FAULT_SPEC } else { fault_spec };
        let plan = FaultPlan::parse(spec)?;
        let server = Server::start(&ServiceConfig {
            workers: 2,
            queue_capacity: 16,
            restart_budget: 1_000_000,
            backoff_base_ms: 1,
            fault_plan: Some(plan),
            ..ServiceConfig::default()
        })
        .map_err(|e| format!("service oracle failed to start: {e}"))?;
        let addr = server.local_addr();
        Ok(ServiceOracle { server: Some(server), addr })
    }

    /// Diff one WIR source across all three backends. Returns the
    /// number of engine runs performed.
    ///
    /// # Errors
    ///
    /// The first [`DivergenceKind::Service`] disagreement (or
    /// non-convergence) found.
    pub fn check_source(&self, source: &str) -> Result<u64, Divergence> {
        let fail = |engine: &str, detail: String| Divergence {
            kind: DivergenceKind::Service,
            engine: engine.to_string(),
            detail,
        };
        let parsed = parse_wir(source)
            .map_err(|e| fail("service/parse", format!("source does not parse: {e}")))?;
        let mut runs = 0u64;
        for (backend, name, config) in [
            (Backend::Baseline, "baseline", SimConfig::baseline()),
            (Backend::Sempe, "sempe", SimConfig::paper()),
            (Backend::Cte, "cte", SimConfig::baseline()),
        ] {
            let engine = format!("service/{name}");
            // Direct lane: compile + fresh simulator, no service stack.
            let cw = compile(&parsed.program, backend)
                .map_err(|e| fail(&engine, format!("direct compile failed: {e}")))?;
            let mut sim = Simulator::new(cw.program(), config)
                .map_err(|e| fail(&engine, format!("direct sim build failed: {e}")))?;
            let res =
                sim.run(SIM_FUEL).map_err(|e| fail(&engine, format!("direct sim fault: {e}")))?;
            let outputs = cw.read_outputs(sim.mem());
            runs += 1;

            // Service lane: the same source over the wire, twice — the
            // repeat must be byte-identical (result-cache invariant).
            let request = Json::obj()
                .with("type", "run")
                .with("source", source)
                .with("backend", name)
                .with("max_cycles", SIM_FUEL)
                .encode();
            let first = converge(self.addr, &request).map_err(|d| fail(&engine, d))?;
            let second = converge(self.addr, &request).map_err(|d| fail(&engine, d))?;
            runs += 2;
            if first != second {
                return Err(fail(
                    &engine,
                    format!("repeat response not byte-identical:\n 1st: {first}\n 2nd: {second}"),
                ));
            }
            let v = json::parse(&first)
                .map_err(|e| fail(&engine, format!("unparseable response: {e}: {first}")))?;
            if v.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(fail(&engine, format!("service refused a valid program: {first}")));
            }
            let got_cycles = v.get("cycles").and_then(Json::as_u64);
            let got_committed = v.get("committed").and_then(Json::as_u64);
            if got_cycles != Some(res.stats.cycles) || got_committed != Some(res.stats.committed) {
                return Err(fail(
                    &engine,
                    format!(
                        "service reported cycles {got_cycles:?} / committed {got_committed:?}, \
                         direct run {} / {}",
                        res.stats.cycles, res.stats.committed
                    ),
                ));
            }
            let got_outputs: Option<Vec<u64>> = v
                .get("outputs")
                .and_then(Json::as_array)
                .map(|a| a.iter().filter_map(Json::as_u64).collect());
            if got_outputs.as_deref() != Some(&outputs[..]) {
                return Err(fail(
                    &engine,
                    format!("service outputs {got_outputs:?} != direct outputs {outputs:?}"),
                ));
            }
        }
        Ok(runs)
    }

    /// Drain and stop the daemon.
    pub fn shutdown(mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
            server.join();
        }
    }
}

impl Drop for ServiceOracle {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
            server.join();
        }
    }
}

/// One exchange on a fresh connection; `Err` is a retryable transport
/// outcome (connect refused, dropped/truncated frame, timeout).
fn one_exchange(addr: SocketAddr, line: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    writeln!(stream, "{line}").map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    BufReader::new(stream).read_line(&mut resp).map_err(|e| format!("recv: {e}"))?;
    if resp.is_empty() {
        return Err("connection dropped before any response".to_string());
    }
    if !resp.ends_with('\n') {
        return Err(format!("truncated frame ({} bytes)", resp.len()));
    }
    Ok(resp.trim_end().to_string())
}

/// Retry until the daemon produces a non-`E_BUSY` structured response.
fn converge(addr: SocketAddr, line: &str) -> Result<String, String> {
    let mut last = String::new();
    for attempt in 1..=RETRY_BUDGET {
        match one_exchange(addr, line) {
            Ok(resp) if resp.contains("\"E_BUSY\"") => last = resp,
            Ok(resp) => return Ok(resp),
            Err(why) => last = why,
        }
        std::thread::sleep(Duration::from_millis(u64::from(attempt.min(10))));
    }
    Err(format!("no convergence in {RETRY_BUDGET} attempts; last outcome: {last}"))
}
