//! `sempe-fuzz` — the differential fuzzing driver.
//!
//! ```text
//! sempe-fuzz --iters 1000 --seed 1 --out report.json
//! sempe-fuzz --backend-pair sempe          # oracle vs SeMPE only
//! sempe-fuzz --profile ct                  # constant-time cases only
//! sempe-fuzz --corpus crates/fuzz/corpus   # replay regression seeds
//! ```
//!
//! Exit code 0 when clean, 1 on any divergence or corpus regression,
//! 2 on usage errors. The JSON report (via `--out`) carries one entry
//! per divergence, including the minimized reproducer source.

use std::process::ExitCode;
use std::time::Instant;

use sempe_core::json::Json;
use sempe_fuzz::{
    check_case, generate, shrink, CorpusEntry, EngineSet, GenConfig, Profile, ServiceOracle,
    SimArena,
};
use sempe_workloads::rng::SplitMix64;

struct Args {
    iters: u64,
    seed: u64,
    profile: Option<Profile>,
    engines: EngineSet,
    out: Option<String>,
    corpus: Option<String>,
    service: bool,
    service_fault_plan: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 1000,
        seed: 1,
        profile: None,
        engines: EngineSet::all(),
        out: None,
        corpus: None,
        service: false,
        service_fault_plan: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--iters" => {
                args.iters = value("--iters")?.parse().map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--profile" => {
                let v = value("--profile")?;
                if v == "both" {
                    args.profile = None;
                } else {
                    args.profile = Some(
                        Profile::parse(&v)
                            .ok_or(format!("--profile: expected correctness|ct|both, got `{v}`"))?,
                    );
                }
            }
            "--backend-pair" => {
                let v = value("--backend-pair")?;
                args.engines = EngineSet::parse(&v).ok_or(format!(
                    "--backend-pair: expected `all` or a subset of baseline,sempe,cte, got `{v}`"
                ))?;
            }
            "--out" => args.out = Some(value("--out")?),
            "--corpus" => args.corpus = Some(value("--corpus")?),
            "--service" => args.service = true,
            "--service-fault-plan" => {
                args.service = true;
                args.service_fault_plan = value("--service-fault-plan")?;
            }
            "--help" | "-h" => {
                return Err("usage: sempe-fuzz [--iters N] [--seed S] \
                            [--profile correctness|ct|both] \
                            [--backend-pair all|baseline,sempe,cte] \
                            [--out report.json] [--corpus DIR] \
                            [--service] [--service-fault-plan SPEC]"
                    .to_string())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Returns (entries replayed, aggregate oracle stats, failures).
fn replay_corpus(
    dir: &str,
    engines: &EngineSet,
    arena: &mut SimArena,
) -> (u64, sempe_fuzz::CheckStats, Vec<Json>) {
    let mut failures = Vec::new();
    let mut replayed = 0u64;
    let mut agg = sempe_fuzz::CheckStats::default();
    let mut paths: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "wir"))
            .collect(),
        Err(e) => {
            failures.push(
                Json::obj().with("file", dir).with("error", format!("cannot read corpus dir: {e}")),
            );
            return (0, agg, failures);
        }
    };
    paths.sort();
    for path in paths {
        let name = path.display().to_string();
        let outcome = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| CorpusEntry::parse(&text))
            .and_then(|entry| entry.check(engines, arena));
        replayed += 1;
        match outcome {
            Ok(stats) => {
                agg.engine_runs += stats.engine_runs;
                agg.leak_pairs += stats.leak_pairs;
            }
            Err(msg) => {
                eprintln!("corpus regression: {name}: {msg}");
                failures.push(Json::obj().with("file", name).with("error", msg));
            }
        }
    }
    (replayed, agg, failures)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let mut arena = SimArena::new();
    let mut divergences: Vec<Json> = Vec::new();
    let mut corpus_failures: Vec<Json> = Vec::new();
    let mut corpus_replayed = 0u64;
    let mut engine_runs = 0u64;
    let mut leak_pairs = 0u64;
    let mut cases = 0u64;
    let mut invalid = 0u64;
    let mut service_checks = 0u64;

    let service = if args.service {
        match ServiceOracle::start(&args.service_fault_plan) {
            Ok(oracle) => Some(oracle),
            Err(msg) => {
                eprintln!("--service: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    if let Some(dir) = &args.corpus {
        let (n, stats, fails) = replay_corpus(dir, &args.engines, &mut arena);
        corpus_replayed = n;
        engine_runs += stats.engine_runs;
        leak_pairs += stats.leak_pairs;
        corpus_failures = fails;
    }

    let mut case_seeds = SplitMix64::new(args.seed);
    for iter in 0..args.iters {
        let profile = match args.profile {
            Some(p) => p,
            None if iter % 2 == 0 => Profile::Correctness,
            None => Profile::ConstantTime,
        };
        let case_seed = case_seeds.next_u64();
        let mut config = GenConfig::new(profile);
        if iter % 4 == 3 {
            // Every fourth case: a bigger, deeper program (more nesting
            // levels, more pressure on snapshots/drains/shadow slots).
            config.max_stmts = 56;
            config.max_depth = 5;
        }
        let case = generate(case_seed, &config);
        cases += 1;
        match check_case(&case, &args.engines, &mut arena) {
            Ok(stats) => {
                engine_runs += stats.engine_runs;
                leak_pairs += stats.leak_pairs;
                // Service differential: the same case through the
                // fault-injected in-process daemon, diffed against
                // direct simulator runs.
                if let Some(oracle) = &service {
                    let (p0, key) = case.wir(case.pair.0);
                    let source = sempe_compile::to_source(&p0, &[key]);
                    match oracle.check_source(&source) {
                        Ok(runs) => {
                            engine_runs += runs;
                            service_checks += 1;
                        }
                        Err(d) => {
                            eprintln!("iter {iter} (seed {case_seed}): {d}");
                            divergences.push(
                                Json::obj()
                                    .with("iter", iter)
                                    .with("case_seed", case_seed)
                                    .with("kind", d.kind.name())
                                    .with("engine", d.engine.as_str())
                                    .with("detail", d.detail.as_str())
                                    .with("source", source),
                            );
                        }
                    }
                }
            }
            Err(d) if d.kind == sempe_fuzz::DivergenceKind::Invalid => {
                // A generator bug, not a backend bug: record loudly but
                // separately (the acceptance bar is zero of these too).
                invalid += 1;
                eprintln!("iter {iter}: generator produced an invalid program: {d}");
                divergences.push(
                    Json::obj()
                        .with("iter", iter)
                        .with("case_seed", case_seed)
                        .with("kind", d.kind.name())
                        .with("engine", d.engine.as_str())
                        .with("detail", d.detail.as_str())
                        .with("source", case.to_source()),
                );
            }
            Err(d) => {
                eprintln!("iter {iter} (seed {case_seed}): {d}");
                let minimized = shrink(&case, d.kind, &args.engines, &mut arena);
                let source = minimized.to_source();
                eprintln!("--- minimized reproducer ---\n{source}");
                divergences.push(
                    Json::obj()
                        .with("iter", iter)
                        .with("case_seed", case_seed)
                        .with("profile", profile.name())
                        .with("kind", d.kind.name())
                        .with("engine", d.engine.as_str())
                        .with("detail", d.detail.as_str())
                        .with("source", source),
                );
            }
        }
    }

    if let Some(oracle) = service {
        oracle.shutdown();
    }
    let elapsed = started.elapsed();
    let ok = divergences.is_empty() && corpus_failures.is_empty();
    let report = Json::obj()
        .with("ok", ok)
        .with("iters", args.iters)
        .with("seed", args.seed)
        .with("cases", cases)
        .with("invalid_cases", invalid)
        .with("engine_runs", engine_runs)
        .with("leak_pairs", leak_pairs)
        .with("service_checks", service_checks)
        .with("corpus_replayed", corpus_replayed)
        .with("elapsed_ms", u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX))
        .with("divergences", Json::Arr(divergences.clone()))
        .with("corpus_failures", Json::Arr(corpus_failures.clone()));
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, report.encode() + "\n") {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    println!(
        "sempe-fuzz: {cases} cases ({corpus_replayed} corpus), {engine_runs} engine runs, \
         {leak_pairs} leak pairs, {} divergences, {} corpus regressions in {:.1}s",
        divergences.len(),
        corpus_failures.len(),
        elapsed.as_secs_f64()
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
