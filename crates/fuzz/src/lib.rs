//! # sempe-fuzz — differential fuzzing across every backend
//!
//! SeMPE's security argument only holds if the protected backends are
//! semantically equivalent to the insecure reference: a miscompiled
//! secure region is both a wrong answer and a potential leak. This crate
//! is the automated oracle that hammers the whole stack against itself:
//!
//! 1. [`gen`] deterministically grows random WIR programs — nested
//!    secret/public conditionals, bounded loops, array traffic — from a
//!    64-bit seed, with the taint discipline of a constant-time compiler
//!    when the leak invariant is to be checked;
//! 2. [`oracle`] runs each program through the WIR reference
//!    interpreter, all three code generators, both ISA interpreters and
//!    the cycle-level pipeline in both security modes, comparing final
//!    scalar state, final array state, and committed-instruction counts
//!    — and, for paired secret inputs, the leak invariant (committed
//!    counts, cycle counts and observation traces must be
//!    secret-independent on the protected backends);
//! 3. [`shrink`] minimizes any divergence to a small reproducer, which
//!    is checked into `corpus/` as readable WIR source and replayed as a
//!    regression test forever after.
//!
//! The `sempe-fuzz` binary drives the loop; see `docs/fuzzing.md`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gen;
pub mod oracle;
pub mod service;
pub mod shrink;

pub use gen::{generate, FuzzCase, GenConfig, Profile};
pub use oracle::{
    check_case, check_program, CheckStats, Divergence, DivergenceKind, EngineSet, SimArena,
};
pub use service::ServiceOracle;
pub use shrink::shrink;

use sempe_compile::parse_wir;

/// A corpus entry: WIR source plus the directives the replay harness
/// needs (`// profile: …`, `// pair: a b`).
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Which discipline (and hence which invariants) applies.
    pub profile: Profile,
    /// Paired secret values for the leak invariant.
    pub pair: (u64, u64),
    /// Run the static constant-time audit before the leak check (the
    /// default). `// audit: skip` marks hand-vetted entries the
    /// conservative audit rejects (e.g. re-zeroed loop counters inside
    /// secure regions) but whose empirical invariant must still hold.
    pub audit: bool,
    /// The program source.
    pub source: String,
}

impl CorpusEntry {
    /// Parse corpus text: leading `//` directive comments followed by
    /// WIR source. Unknown directives are ignored; defaults are
    /// `profile: correctness` and `pair: 0 1`.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed directives.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let mut profile = Profile::Correctness;
        let mut pair = (0u64, 1u64);
        let mut audit = true;
        for line in text.lines() {
            let Some(comment) = line.trim().strip_prefix("//") else { continue };
            let comment = comment.trim();
            if let Some(p) = comment.strip_prefix("profile:") {
                profile = Profile::parse(p.trim())
                    .ok_or_else(|| format!("unknown profile `{}`", p.trim()))?;
            } else if let Some(p) = comment.strip_prefix("audit:") {
                audit = match p.trim() {
                    "skip" => false,
                    "strict" => true,
                    other => return Err(format!("unknown audit directive `{other}`")),
                };
            } else if let Some(p) = comment.strip_prefix("pair:") {
                let mut it = p.split_whitespace();
                let a = it.next().and_then(|s| s.parse().ok());
                let b = it.next().and_then(|s| s.parse().ok());
                match (a, b) {
                    (Some(a), Some(b)) => pair = (a, b),
                    _ => return Err(format!("bad pair directive `{p}`")),
                }
            }
        }
        Ok(CorpusEntry { profile, pair, audit, source: text.to_string() })
    }

    /// Replay the entry through the full differential oracle.
    ///
    /// # Errors
    ///
    /// The divergence (regression!) or a parse-failure message.
    pub fn check(
        &self,
        engines: &EngineSet,
        arena: &mut SimArena,
    ) -> Result<oracle::CheckStats, String> {
        let parsed = parse_wir(&self.source).map_err(|e| format!("corpus parse: {e}"))?;
        let p0 = parsed.program;
        let pair_prog = if self.profile == Profile::ConstantTime {
            let key =
                *parsed.secrets.first().ok_or("constant-time corpus entry declares no secret")?;
            if self.audit && !sempe_compile::analyze_taint(&p0, &parsed.secrets).is_constant_time()
            {
                return Err("constant-time corpus entry fails the strict taint audit \
                     (its leak invariant would be vacuous)"
                    .to_string());
            }
            let mut p1 = p0.clone();
            p1.set_var_init(key, self.pair.1);
            let mut p0v = p0.clone();
            p0v.set_var_init(key, self.pair.0);
            Some((p0v, p1))
        } else {
            None
        };
        match pair_prog {
            Some((p0v, p1)) => check_program(&p0v, &parsed.secrets, Some(&p1), engines, arena),
            None => check_program(&p0, &parsed.secrets, None, engines, arena),
        }
        .map_err(|d| d.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::new(Profile::ConstantTime);
        let a = generate(7, &cfg);
        let b = generate(7, &cfg);
        assert_eq!(a.body, b.body);
        assert_eq!(a.var_inits, b.var_inits);
        assert_eq!(a.pair, b.pair);
        let c = generate(8, &cfg);
        assert!(c.body != a.body || c.var_inits != a.var_inits || c.pair != a.pair);
    }

    #[test]
    fn generated_cases_round_trip_through_source() {
        for seed in 0..8 {
            let case = generate(seed, &GenConfig::new(Profile::ConstantTime));
            let entry = CorpusEntry::parse(&case.to_source()).expect("directives parse");
            // The audit may have demoted the case; the directive must
            // reflect the *effective* profile either way.
            assert_eq!(entry.profile, case.profile);
            assert_eq!(entry.pair, case.pair);
            // The printed source must itself be valid WIR.
            sempe_compile::parse_wir(&entry.source).expect("source parses");
        }
    }

    #[test]
    fn directive_defaults_and_errors() {
        let e = CorpusEntry::parse("var x = 0;\noutput x;\n").unwrap();
        assert_eq!(e.profile, Profile::Correctness);
        assert_eq!(e.pair, (0, 1));
        assert!(CorpusEntry::parse("// pair: 1\nvar x = 0;").is_err());
        assert!(CorpusEntry::parse("// profile: quantum\nvar x = 0;").is_err());
    }
}
