//! A short in-process fuzzing campaign: the whole pipeline — generate,
//! differentially check, leak-check — must come back clean. (The CI job
//! runs the binary for a longer campaign; this keeps `cargo test`
//! self-contained.)

use sempe_fuzz::{check_case, generate, DivergenceKind, EngineSet, GenConfig, Profile, SimArena};
use sempe_workloads::rng::SplitMix64;

#[test]
fn short_campaign_is_divergence_free() {
    let mut arena = SimArena::new();
    let mut seeds = SplitMix64::new(0xC0FFEE);
    let mut leak_pairs = 0;
    for i in 0..60u64 {
        let profile = if i % 2 == 0 { Profile::Correctness } else { Profile::ConstantTime };
        let case = generate(seeds.next_u64(), &GenConfig::new(profile));
        match check_case(&case, &EngineSet::all(), &mut arena) {
            Ok(stats) => leak_pairs += stats.leak_pairs,
            Err(d) => panic!("iteration {i}: {d}\n{}", case.to_source()),
        }
    }
    assert!(leak_pairs > 0, "the campaign never exercised the leak invariant");
}

#[test]
fn backend_pair_selection_restricts_the_matrix() {
    let mut arena = SimArena::new();
    let engines = EngineSet::parse("cte").expect("parses");
    assert!(!engines.baseline && !engines.sempe && engines.cte);
    let case = generate(99, &GenConfig::new(Profile::Correctness));
    let stats = check_case(&case, &engines, &mut arena).expect("clean");
    // CTE alone: one interpreter + one pipeline run, plus the fork
    // differential's checkpointed + restored runs, the cycle-skip
    // differential's skipping + classic runs, and the tiered
    // differential's fast-forwarding run.
    assert_eq!(stats.engine_runs, 7);
    assert!(EngineSet::parse("quantum").is_none());
    assert!(EngineSet::parse("all").is_some());
}

#[test]
fn shrinker_reductions_never_panic_and_preserve_validity_checks() {
    // There is (happily) no live product divergence to shrink, so drive
    // the shrinker with a kind that cannot reproduce: it must return the
    // case unchanged after exploring reductions, and every explored
    // candidate must have gone through the oracle without crashing.
    let mut arena = SimArena::new();
    let case = generate(5, &GenConfig::new(Profile::ConstantTime));
    let out = sempe_fuzz::shrink(&case, DivergenceKind::Scalars, &EngineSet::all(), &mut arena);
    assert_eq!(out.body, case.body, "no divergence → nothing to shrink");
}
