//! Pinned service-differential seed: one fixed generated case replayed
//! through the fault-injected in-process daemon on every test run, so
//! the `--service` mode (and the service stack's recovery paths it
//! exercises) can never silently rot.

use sempe_fuzz::{generate, GenConfig, Profile, ServiceOracle};

#[test]
fn pinned_seed_matches_direct_simulation_through_a_faulty_service() {
    // Pinned: seed 42, correctness profile. The fault plan is the
    // `--service` default (every site armed at a few percent).
    let case = generate(42, &GenConfig::new(Profile::Correctness));
    let (p0, key) = case.wir(case.pair.0);
    let source = sempe_compile::to_source(&p0, &[key]);

    let oracle = ServiceOracle::start("").expect("service oracle starts");
    let runs = oracle.check_source(&source).expect("pinned seed must not diverge");
    assert!(runs >= 9, "three backends, three runs each, got {runs}");
    oracle.shutdown();
}
