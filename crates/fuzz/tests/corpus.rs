//! Every corpus entry is a regression test: a minimized program that
//! once provoked (or pins against) a divergence. Replaying the corpus
//! through the full differential oracle must stay clean forever.

use sempe_fuzz::{CorpusEntry, EngineSet, SimArena};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn every_corpus_entry_replays_clean() {
    let mut arena = SimArena::new();
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "wir"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 8, "corpus unexpectedly small: {}", paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("corpus entry readable");
        let entry = CorpusEntry::parse(&text)
            .unwrap_or_else(|e| panic!("{}: bad directives: {e}", path.display()));
        let stats = entry
            .check(&EngineSet::all(), &mut arena)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(stats.engine_runs > 0, "{}: oracle ran nothing", path.display());
    }
}

#[test]
fn constant_time_entries_check_leak_pairs() {
    let mut arena = SimArena::new();
    let text = std::fs::read_to_string(corpus_dir().join("ct_modexp.wir")).expect("seed exists");
    let entry = CorpusEntry::parse(&text).expect("parses");
    let stats = entry.check(&EngineSet::all(), &mut arena).expect("clean");
    assert_eq!(stats.leak_pairs, 1, "ct entries must exercise the leak invariant");
}
